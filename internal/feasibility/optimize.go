package feasibility

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
)

// Utility extension. Sec. 2 of the paper notes that a less stringent
// priority model — where recovering much low-priority data may beat
// recovering a little high-priority data — "requires the specification of
// an application-specific utility function over the priority levels" and
// leaves it as an open problem. This file supplies that mechanism on top
// of the same analytical machinery: given marginal utilities u_k for each
// level, choose the priority distribution maximizing the expected utility
//
//	E[U] = Σ_k u_k · Pr(X ≥ k)
//
// at a collection budget of M coded blocks, optionally subject to the
// eq. (9)/(10) constraints.

// Utility assigns a nonnegative marginal utility to each priority level:
// decoding level k (0-based) contributes Utility[k]. The strict priority
// model corresponds to rapidly decaying utilities.
type Utility []float64

// Validate checks the utility vector against the level structure.
func (u Utility) Validate(l *core.Levels) error {
	if len(u) != l.Count() {
		return fmt.Errorf("feasibility: utility has %d entries, want %d levels", len(u), l.Count())
	}
	total := 0.0
	for i, v := range u {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("feasibility: utility[%d] = %g, want finite and >= 0", i, v)
		}
		total += v
	}
	if total == 0 {
		return fmt.Errorf("feasibility: all-zero utility")
	}
	return nil
}

// OptimizeProblem is a utility-maximization instance.
type OptimizeProblem struct {
	Scheme core.Scheme
	Levels *core.Levels
	// Utility is the per-level marginal utility vector.
	Utility Utility
	// M is the collection budget at which expected utility is evaluated.
	M int
	// Decoding, Alpha and Epsilon optionally impose the Sec. 3.4
	// constraints on top of the objective.
	Decoding []Constraint
	Alpha    float64
	Epsilon  float64
}

func (p OptimizeProblem) validate() error {
	if p.Levels == nil {
		return fmt.Errorf("feasibility: nil levels")
	}
	if !p.Scheme.Valid() {
		return fmt.Errorf("feasibility: invalid scheme %v", p.Scheme)
	}
	if err := p.Utility.Validate(p.Levels); err != nil {
		return err
	}
	if p.M < 0 {
		return fmt.Errorf("feasibility: negative budget M = %d", p.M)
	}
	if len(p.Decoding) > 0 || p.Alpha > 0 {
		feas := Problem{
			Scheme: p.Scheme, Levels: p.Levels,
			Decoding: p.Decoding, Alpha: p.Alpha, Epsilon: p.Epsilon,
		}
		if len(feas.Decoding) == 0 {
			// Problem.validate requires at least one constraint; a pure
			// Alpha constraint is fine there.
			feas.Decoding = nil
		}
		if err := feas.validate(); err != nil {
			return err
		}
	}
	return nil
}

// OptimizeSolution is the utility-maximization outcome.
type OptimizeSolution struct {
	P core.PriorityDistribution
	// ExpectedUtility is E[U] at the solution.
	ExpectedUtility float64
	// Violation is the residual constraint violation (0 when the
	// constraints, if any, are met within tolerance).
	Violation float64
	Feasible  bool
	Evals     int
}

// ExpectedUtility evaluates E[U] = Σ_k u_k·Pr(X ≥ k) for a given
// distribution — exposed so applications can compare designs.
func ExpectedUtility(prob OptimizeProblem, p core.PriorityDistribution) (float64, error) {
	if err := prob.validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(prob.Levels); err != nil {
		return 0, err
	}
	return expectedUtility(prob, p)
}

func expectedUtility(prob OptimizeProblem, p core.PriorityDistribution) (float64, error) {
	r, err := analysis.Eval(prob.Scheme, prob.Levels, p, prob.M)
	if err != nil {
		return 0, err
	}
	eu := 0.0
	for k, u := range prob.Utility {
		eu += u * r.PrGE[k]
	}
	return eu, nil
}

// Optimize searches the simplex for the distribution maximizing expected
// utility, subject to any attached constraints (enforced by a penalty a
// thousand times the utility scale, so feasibility dominates). The same
// deterministic multi-start pattern search as Solve drives the search.
func Optimize(prob OptimizeProblem, opts Options) (OptimizeSolution, error) {
	if err := prob.validate(); err != nil {
		return OptimizeSolution{}, err
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	n := prob.Levels.Count()

	uScale := 0.0
	for _, u := range prob.Utility {
		uScale += u
	}
	penalty := 1000 * uScale

	constrained := len(prob.Decoding) > 0 || prob.Alpha > 0
	feas := Problem{
		Scheme: prob.Scheme, Levels: prob.Levels,
		Decoding: prob.Decoding, Alpha: prob.Alpha, Epsilon: prob.Epsilon,
	}

	evals := 0
	// score returns a value to MINIMIZE: -E[U] + penalty·violation.
	score := func(p core.PriorityDistribution) (cost, eu, viol float64, err error) {
		evals++
		eu, err = expectedUtility(prob, p)
		if err != nil {
			return 0, 0, 0, err
		}
		if constrained {
			viol, err = violation(feas, p)
			if err != nil {
				return 0, 0, 0, err
			}
		}
		return -eu + penalty*viol, eu, viol, nil
	}

	best := OptimizeSolution{ExpectedUtility: math.Inf(-1), Violation: math.Inf(1)}
	bestCost := math.Inf(1)

	starts := make([]core.PriorityDistribution, 0, opts.Restarts+1)
	starts = append(starts, core.NewUniformDistribution(n))
	for i := 0; i < opts.Restarts; i++ {
		starts = append(starts, randomSimplexPoint(rng, n))
	}

	for _, start := range starts {
		cur := start.Clone()
		curCost, curEU, curViol, err := score(cur)
		if err != nil {
			return OptimizeSolution{}, err
		}
		for _, step := range []float64{0.2, 0.1, 0.05, 0.02, 0.01, 0.005} {
			improved := true
			for improved && evals < opts.MaxEvals {
				improved = false
				for i := 0; i < n && evals < opts.MaxEvals; i++ {
					for j := 0; j < n && evals < opts.MaxEvals; j++ {
						if i == j {
							continue
						}
						cand := moveMass(cur, i, j, step)
						if cand == nil {
							continue
						}
						cost, eu, viol, err := score(cand)
						if err != nil {
							return OptimizeSolution{}, err
						}
						if cost < curCost-1e-12 {
							cur, curCost, curEU, curViol = cand, cost, eu, viol
							improved = true
						}
					}
				}
			}
		}
		if curCost < bestCost {
			bestCost = curCost
			best = OptimizeSolution{P: cur, ExpectedUtility: curEU, Violation: curViol}
		}
		if evals >= opts.MaxEvals {
			break
		}
	}
	best.Feasible = best.Violation <= opts.Tol
	best.Evals = evals
	return best, nil
}

// GeometricUtility returns the utility vector u_k = base^k (0-based),
// a convenient family interpolating between strict priority (base → 0)
// and volume maximization (base = 1).
func GeometricUtility(n int, base float64) (Utility, error) {
	if n <= 0 {
		return nil, fmt.Errorf("feasibility: n = %d, want > 0", n)
	}
	if base < 0 {
		return nil, fmt.Errorf("feasibility: base %g, want >= 0", base)
	}
	u := make(Utility, n)
	v := 1.0
	for i := range u {
		u[i] = v
		v *= base
	}
	return u, nil
}

// ProportionalUtility weights each level by its block count — expected
// utility then equals the expected number of source blocks recovered in
// complete levels, the natural "volume" objective.
func ProportionalUtility(l *core.Levels) Utility {
	u := make(Utility, l.Count())
	for i := range u {
		u[i] = float64(l.Size(i))
	}
	return u
}
