package feasibility

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestUtilityValidate(t *testing.T) {
	l := mustTestLevels(t, 5, 5)
	if err := (Utility{1, 0.5}).Validate(l); err != nil {
		t.Errorf("valid utility rejected: %v", err)
	}
	bad := []Utility{
		{1},              // wrong length
		{1, -0.1},        // negative
		{0, 0},           // all zero
		{1, math.NaN()},  // NaN
		{1, math.Inf(1)}, // Inf
	}
	for i, u := range bad {
		if err := u.Validate(l); err == nil {
			t.Errorf("bad utility %d accepted", i)
		}
	}
}

func mustTestLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGeometricUtility(t *testing.T) {
	u, err := GeometricUtility(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-12 {
			t.Errorf("GeometricUtility[%d] = %g, want %g", i, u[i], want[i])
		}
	}
	if _, err := GeometricUtility(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GeometricUtility(3, -1); err == nil {
		t.Error("negative base accepted")
	}
}

func TestProportionalUtility(t *testing.T) {
	l := mustTestLevels(t, 5, 10, 15)
	u := ProportionalUtility(l)
	if u[0] != 5 || u[1] != 10 || u[2] != 15 {
		t.Errorf("ProportionalUtility = %v", u)
	}
}

func TestExpectedUtilityMatchesAnalysis(t *testing.T) {
	l := mustTestLevels(t, 4, 4)
	prob := OptimizeProblem{
		Scheme: core.PLC, Levels: l,
		Utility: Utility{1, 1},
		M:       20,
	}
	// With unit utilities, E[U] = Σ Pr(X≥k) = E[X].
	p := core.NewUniformDistribution(2)
	eu, err := ExpectedUtility(prob, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := analysisEval(core.PLC, l, p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eu-r) > 1e-12 {
		t.Errorf("E[U] with unit utilities = %g, E[X] = %g", eu, r)
	}
}

func analysisEval(s core.Scheme, l *core.Levels, p core.PriorityDistribution, m int) (float64, error) {
	prob := OptimizeProblem{Scheme: s, Levels: l, Utility: make(Utility, l.Count()), M: m}
	for i := range prob.Utility {
		prob.Utility[i] = 1
	}
	return expectedUtility(prob, p)
}

func TestOptimizeValidation(t *testing.T) {
	l := mustTestLevels(t, 2, 2)
	bad := []OptimizeProblem{
		{Scheme: core.PLC, Utility: Utility{1, 1}, M: 5},                                  // nil levels
		{Scheme: core.Scheme(0), Levels: l, Utility: Utility{1, 1}, M: 5},                 // bad scheme
		{Scheme: core.PLC, Levels: l, Utility: Utility{1}, M: 5},                          // bad utility
		{Scheme: core.PLC, Levels: l, Utility: Utility{1, 1}, M: -1},                      // bad M
		{Scheme: core.PLC, Levels: l, Utility: Utility{1, 1}, M: 5, Alpha: 2, Epsilon: 0}, // bad eps
	}
	for i, prob := range bad {
		if _, err := Optimize(prob, Options{Seed: 1, MaxEvals: 10}); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

// TestOptimizeStrictUtilityFavorsTopLevel: with utility overwhelmingly on
// level 0 and a small budget, the optimizer concentrates coded blocks on
// level 0, beating the uniform design.
func TestOptimizeStrictUtilityFavorsTopLevel(t *testing.T) {
	l := mustTestLevels(t, 5, 20)
	prob := OptimizeProblem{
		Scheme: core.PLC, Levels: l,
		Utility: Utility{1, 0.01},
		M:       10, // enough for level 0 only
	}
	sol, err := Optimize(prob, Options{Seed: 2, MaxEvals: 600})
	if err != nil {
		t.Fatal(err)
	}
	if sol.P[0] < 0.6 {
		t.Errorf("strict utility produced p = %v, want heavy level-0 share", sol.P)
	}
	uniformEU, err := ExpectedUtility(prob, core.NewUniformDistribution(2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.ExpectedUtility < uniformEU {
		t.Errorf("optimized E[U] %g below uniform %g", sol.ExpectedUtility, uniformEU)
	}
}

// TestOptimizeVolumeUtilityPrefersBulk: with utility proportional to level
// size and a budget big enough only for the bulk level pair, the optimizer
// must NOT starve the large levels — the non-strict regime the paper
// leaves open.
func TestOptimizeVolumeUtilityPrefersBulk(t *testing.T) {
	l := mustTestLevels(t, 2, 28) // tiny critical level, big bulk level
	prob := OptimizeProblem{
		Scheme:  core.PLC,
		Levels:  l,
		Utility: ProportionalUtility(l), // 2 vs 28
		M:       40,
	}
	sol, err := Optimize(prob, Options{Seed: 3, MaxEvals: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Recovering the bulk level requires plenty of level-1 blocks.
	if sol.P[1] < 0.5 {
		t.Errorf("volume utility produced p = %v, want heavy bulk share", sol.P)
	}
}

// TestOptimizeWithConstraints: the constraint must hold even when it costs
// utility.
func TestOptimizeWithConstraints(t *testing.T) {
	l := mustTestLevels(t, 5, 20)
	prob := OptimizeProblem{
		Scheme:  core.PLC,
		Levels:  l,
		Utility: Utility{0.01, 1}, // utility wants the bulk level
		M:       30,
		// ...but operations demand the critical level decodes from 8 blocks.
		Decoding: []Constraint{{M: 8, MinLevels: 0.8}},
	}
	sol, err := Optimize(prob, Options{Seed: 4, MaxEvals: 800})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("constraint not met: violation %g, p = %v", sol.Violation, sol.P)
	}
	v, err := Violation(Problem{
		Scheme: core.PLC, Levels: l,
		Decoding: prob.Decoding,
	}, sol.P)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-5 {
		t.Errorf("reported feasible but violation %g", v)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	l := mustTestLevels(t, 3, 3)
	prob := OptimizeProblem{
		Scheme: core.SLC, Levels: l,
		Utility: Utility{1, 0.5},
		M:       8,
	}
	a, err := Optimize(prob, Options{Seed: 5, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(prob, Options{Seed: 5, MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("non-deterministic: %v vs %v", a.P, b.P)
		}
	}
}
