package feasibility

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

func sec53Levels(t testing.TB) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(50, 100, 350) // the Sec. 5.3 structure, N = 500
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestProblemValidation(t *testing.T) {
	l := sec53Levels(t)
	good := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{M: 130, MinLevels: 1}},
		Alpha:    2, Epsilon: 0.01,
	}
	if err := good.validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []Problem{
		{Scheme: core.PLC, Levels: nil, Decoding: good.Decoding},
		{Scheme: core.Scheme(0), Levels: l, Decoding: good.Decoding},
		{Scheme: core.PLC, Levels: l}, // no constraints at all
		{Scheme: core.PLC, Levels: l, Decoding: []Constraint{{M: -1, MinLevels: 1}}},
		{Scheme: core.PLC, Levels: l, Decoding: []Constraint{{M: 10, MinLevels: 9}}},
		{Scheme: core.PLC, Levels: l, Decoding: good.Decoding, Alpha: 2, Epsilon: 0},
		{Scheme: core.PLC, Levels: l, Decoding: good.Decoding, Alpha: 2, Epsilon: 1},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestViolationZeroForSlackConstraints(t *testing.T) {
	l := sec53Levels(t)
	prob := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{M: 1000, MinLevels: 1}}, // trivially satisfied
	}
	v, err := Violation(prob, core.NewUniformDistribution(3))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("violation = %g for slack constraint, want 0", v)
	}
}

func TestViolationPositiveForImpossibleConstraints(t *testing.T) {
	l := sec53Levels(t)
	prob := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{M: 10, MinLevels: 3}}, // 10 blocks can never decode 500
	}
	v, err := Violation(prob, core.NewUniformDistribution(3))
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("violation = %g for impossible constraint, want > 0", v)
	}
}

func TestViolationRejectsBadDistribution(t *testing.T) {
	l := sec53Levels(t)
	prob := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{M: 100, MinLevels: 1}},
	}
	if _, err := Violation(prob, core.PriorityDistribution{0.5, 0.5}); err == nil {
		t.Error("wrong-length distribution accepted")
	}
}

// TestPaperTable1DistributionsNearFeasible validates the paper's reported
// Table 1 solutions against our analytical model: each must satisfy its
// decoding constraints to within a small tolerance (the paper's own PLC
// analysis is approximate, ours is exact, so exact equality is not
// expected at the constraint boundary).
func TestPaperTable1DistributionsNearFeasible(t *testing.T) {
	l := sec53Levels(t)
	cases := []struct {
		name        string
		constraints []Constraint
		p           core.PriorityDistribution
	}{
		{"case1", []Constraint{{130, 1}, {950, 2}}, core.PriorityDistribution{0.5138, 0.0768, 0.4094}},
		{"case2", []Constraint{{265, 1}, {287, 2}}, core.PriorityDistribution{0, 0.6149, 0.3851}},
		{"case3", []Constraint{{240, 1}, {450, 2}}, core.PriorityDistribution{0.2894, 0.3246, 0.3860}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, c := range tc.constraints {
				r, err := analysis.Eval(core.PLC, l, tc.p, c.M)
				if err != nil {
					t.Fatal(err)
				}
				if r.EX < c.MinLevels-0.12 {
					t.Errorf("paper distribution gives E(X_%d) = %.3f, constraint %g",
						c.M, r.EX, c.MinLevels)
				}
			}
		})
	}
}

// TestSolveTable1Cases reproduces Table 1: the solver must find a feasible
// distribution for each of the three constraint cases, including the full
// α = 2, ε = 0.01 recovery constraint of eq. (10).
func TestSolveTable1Cases(t *testing.T) {
	if testing.Short() {
		t.Skip("feasibility search is expensive; run without -short")
	}
	l := sec53Levels(t)
	cases := []struct {
		name        string
		constraints []Constraint
	}{
		{"case1", []Constraint{{130, 1}, {950, 2}}},
		{"case2", []Constraint{{265, 1}, {287, 2}}},
		{"case3", []Constraint{{240, 1}, {450, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prob := Problem{
				Scheme:   core.PLC,
				Levels:   l,
				Decoding: tc.constraints,
				Alpha:    2, Epsilon: 0.01,
			}
			sol, err := Solve(prob, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Feasible {
				t.Fatalf("no feasible distribution found (violation %g after %d evals, p=%v)",
					sol.Violation, sol.Evals, sol.P)
			}
			// Double-check feasibility through the public Violation API:
			// within solver tolerance, i.e. constraint gaps below ~3e-3
			// expected levels.
			v, err := Violation(prob, sol.P)
			if err != nil {
				t.Fatal(err)
			}
			if v > 1e-5 {
				t.Errorf("solver-reported feasible point has violation %g", v)
			}
		})
	}
}

func TestSolveInfeasibleReportsBestEffort(t *testing.T) {
	l := sec53Levels(t)
	prob := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{M: 10, MinLevels: 3}},
	}
	sol, err := Solve(prob, Options{Seed: 1, MaxEvals: 60, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Error("impossible problem reported feasible")
	}
	if sol.P == nil || math.IsInf(sol.Violation, 1) {
		t.Errorf("no best-effort point returned: %+v", sol)
	}
}

func TestSolveDeterministicGivenSeed(t *testing.T) {
	l, err := core.NewLevels(5, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	prob := Problem{
		Scheme:   core.PLC,
		Levels:   l,
		Decoding: []Constraint{{12, 1}, {40, 2.5}},
	}
	a, err := Solve(prob, Options{Seed: 7, MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(prob, Options{Seed: 7, MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.P) != len(b.P) {
		t.Fatal("result lengths differ")
	}
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatalf("solutions differ at %d: %v vs %v", i, a.P, b.P)
		}
	}
}

func TestSolveSmallSLCProblem(t *testing.T) {
	l, err := core.NewLevels(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prob := Problem{
		Scheme:   core.SLC,
		Levels:   l,
		Decoding: []Constraint{{8, 1}},
	}
	sol, err := Solve(prob, Options{Seed: 3, MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("simple SLC problem unsolved: violation %g, p=%v", sol.Violation, sol.P)
	}
	// Decoding level 1 (4 blocks) from 8 coded blocks in expectation needs
	// the level-0 share well above uniform.
	if sol.P[0] <= 0.5 {
		t.Errorf("solution %v does not favor level 0 as expected", sol.P)
	}
}
