package mover

import "repro/internal/metrics"

// moverMetrics is the mover's metrics seam, following the repair
// daemon's pattern: names resolve once at construction, and a nil
// registry yields all-nil fields with every recording call a no-op.
// The name catalog lives in DESIGN.md §15.
type moverMetrics struct {
	rounds          *metrics.Counter
	roundErrors     *metrics.Counter
	roundNs         *metrics.Histogram
	kicks           *metrics.Counter
	objectsPlanned  *metrics.Counter
	objectsMigrated *metrics.Counter
	objectsSkipped  *metrics.Counter
	objectErrors    *metrics.Counter

	blocksRegenerated *metrics.Counter
	blocksCopied      *metrics.Counter
	copiesPlaced      *metrics.Counter
	bytesCollected    *metrics.Counter
	bytesPlaced       *metrics.Counter
	levelsSkipped     *metrics.Counter

	deletesIssued   *metrics.Counter
	blocksReclaimed *metrics.Counter

	throttleWaitNs *metrics.Histogram

	consecutiveFailures *metrics.Gauge
	backoffNs           *metrics.Gauge
}

func newMoverMetrics(r *metrics.Registry) moverMetrics {
	return moverMetrics{
		rounds:              r.Counter("mover_rounds_total"),
		roundErrors:         r.Counter("mover_round_errors_total"),
		roundNs:             r.Histogram("mover_round_ns"),
		kicks:               r.Counter("mover_kicks_total"),
		objectsPlanned:      r.Counter("mover_objects_planned_total"),
		objectsMigrated:     r.Counter("mover_objects_migrated_total"),
		objectsSkipped:      r.Counter("mover_objects_skipped_total"),
		objectErrors:        r.Counter("mover_object_errors_total"),
		blocksRegenerated:   r.Counter("mover_blocks_regenerated_total"),
		blocksCopied:        r.Counter("mover_blocks_copied_total"),
		copiesPlaced:        r.Counter("mover_copies_placed_total"),
		bytesCollected:      r.Counter("mover_bytes_collected_total"),
		bytesPlaced:         r.Counter("mover_bytes_placed_total"),
		levelsSkipped:       r.Counter("mover_levels_skipped_total"),
		deletesIssued:       r.Counter("mover_deletes_issued_total"),
		blocksReclaimed:     r.Counter("mover_blocks_reclaimed_total"),
		throttleWaitNs:      r.Histogram("mover_throttle_wait_ns"),
		consecutiveFailures: r.Gauge("mover_consecutive_failures"),
		backoffNs:           r.Gauge("mover_backoff_ns"),
	}
}
