package mover

import (
	"context"
	"sync"
	"time"
)

// throttle is a token-bucket byte-rate limiter shared by every transfer
// worker: each collected or placed wire byte spends one token, so the
// mover's aggregate network footprint stays under Config.RateLimit no
// matter how many objects move concurrently. A nil throttle admits
// everything immediately.
type throttle struct {
	rate  float64 // tokens (bytes) refilled per second
	burst float64 // bucket capacity

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newThrottle(rate, burst int64) *throttle {
	if rate <= 0 {
		return nil
	}
	if burst < rate {
		burst = rate // at least one second of headroom
	}
	return &throttle{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst), // start full: the first batch is never delayed
		last:   time.Now(),
	}
}

// wait blocks until n bytes of budget are available (or ctx expires),
// and returns how long it slept. Requests larger than the burst are
// admitted once the bucket is full — they overdraw it rather than
// deadlock, so one giant block still moves, just slowly.
func (t *throttle) wait(ctx context.Context, n int) (time.Duration, error) {
	if t == nil || n <= 0 {
		return 0, nil
	}
	need := float64(n)
	if need > t.burst {
		need = t.burst
	}
	var slept time.Duration
	for {
		t.mu.Lock()
		now := time.Now()
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.last = now
		if t.tokens >= need {
			t.tokens -= float64(n) // spend the true cost, overdrawing if oversized
			t.mu.Unlock()
			return slept, nil
		}
		gap := time.Duration((need - t.tokens) / t.rate * float64(time.Second))
		t.mu.Unlock()
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		timer := time.NewTimer(gap)
		select {
		case <-ctx.Done():
			timer.Stop()
			return slept, ctx.Err()
		case <-timer.C:
			slept += gap
		}
	}
}
