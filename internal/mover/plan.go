package mover

import (
	"context"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/store"
)

// LevelDeficit is one priority level's shortfall on an object's current
// owners, measured against the provisioning targets.
type LevelDeficit struct {
	// Level is the priority level (0 = most critical).
	Level int
	// Replicas is the level's replication factor within the shard.
	Replicas int
	// Want = Distinct(level) * Replicas, the shard-wide copy target.
	Want int
	// Have is the copies the current owners held at plan time.
	Have int
	// Deficit = Want - Have (> 0, or the level would not be listed).
	Deficit int
}

// ObjectPlan is one object's migration work order.
type ObjectPlan struct {
	// Object is the namespace to re-home.
	Object core.ObjectID
	// Owners is the current successor list, nearest first — where the
	// object's blocks must live now.
	Owners []string
	// Stale lists reachable nodes holding the object's blocks without
	// owning it anymore: the transfer sources and, after verification,
	// the reclaim targets.
	Stale []string
	// Deficits lists the owner-side shortfalls ascending by level; empty
	// means the owners are already provisioned and only reclaim remains.
	Deficits []LevelDeficit
	// Critical is the lowest deficient level, or the level count when no
	// level is deficient — the plan's sort key, so the round spends its
	// bandwidth on the objects whose most critical data is least safe.
	Critical int
}

// Plan is one round's migration work, ordered most-critical-level-first
// (ties broken by object ID, so a fixed fleet state replans
// identically).
type Plan struct {
	// Objects is the work list; empty means placement and data agree.
	Objects []ObjectPlan
	// Unreachable lists ring members whose inventory could not be read.
	// Their holdings are invisible to this plan, so objects they hold
	// stale copies of are re-planned once they answer again.
	Unreachable []string
}

// plan scans every reachable ring member's per-object inventory and
// diffs it against current ring ownership: an object held by a node
// outside its successor list needs migration. Enumerating from node
// inventories — rather than replaying membership events — makes the
// round idempotent and restart-safe: whatever the mover missed while
// down is still visible as stale holdings.
func (m *Mover) plan(ctx context.Context, targets []int) (*Plan, error) {
	members := m.placed.Members()
	type statResult struct {
		addr string
		st   store.Stats
		err  error
	}
	results := make([]statResult, len(members))
	var wg sync.WaitGroup
	for i, mem := range members {
		results[i].addr = mem.Addr
		if !mem.Alive {
			results[i].err = store.ErrStoreUnavailable
			continue
		}
		cl, err := m.placed.ClientFor(mem.Addr)
		if err != nil {
			results[i].err = err
			continue
		}
		wg.Add(1)
		go func(i int, cl *store.Client) {
			defer wg.Done()
			results[i].st, results[i].err = cl.Stat(ctx)
		}(i, cl)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	plan := &Plan{}
	holders := make(map[core.ObjectID]map[string][]store.LevelCount)
	for _, r := range results {
		if r.err != nil {
			plan.Unreachable = append(plan.Unreachable, r.addr)
			continue
		}
		for _, os := range r.st.PerObject {
			byAddr := holders[os.Object]
			if byAddr == nil {
				byAddr = make(map[string][]store.LevelCount)
				holders[os.Object] = byAddr
			}
			byAddr[r.addr] = os.PerLevel
		}
	}

	objs := make([]core.ObjectID, 0, len(holders))
	for obj := range holders {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })

	levels := m.placed.Levels()
	for _, obj := range objs {
		shard, err := m.placed.Shard(obj)
		if err != nil {
			// No alive successor: the object is unplaceable until the
			// fleet heals. Nothing can be moved or verified, so nothing
			// may be reclaimed either.
			m.met.objectsSkipped.Inc()
			continue
		}
		owners := shard.ReplicaLabels()
		ownerSet := make(map[string]bool, len(owners))
		for _, a := range owners {
			ownerSet[a] = true
		}
		op := ObjectPlan{Object: obj, Owners: owners, Critical: levels}
		have := make([]int, levels)
		for addr, perLevel := range holders[obj] {
			if !ownerSet[addr] {
				op.Stale = append(op.Stale, addr)
				continue
			}
			for _, lc := range perLevel {
				if lc.Level >= 0 && lc.Level < levels {
					have[lc.Level] += lc.Count
				}
			}
		}
		if len(op.Stale) == 0 {
			continue // nothing misplaced; owner-side deficits are repair's job
		}
		sort.Strings(op.Stale)
		for lvl := 0; lvl < levels; lvl++ {
			want := targets[lvl] * shard.ReplicasFor(lvl)
			if have[lvl] >= want {
				continue
			}
			if op.Critical == levels {
				op.Critical = lvl
			}
			op.Deficits = append(op.Deficits, LevelDeficit{
				Level:    lvl,
				Replicas: shard.ReplicasFor(lvl),
				Want:     want,
				Have:     have[lvl],
				Deficit:  want - have[lvl],
			})
		}
		plan.Objects = append(plan.Objects, op)
	}
	sort.SliceStable(plan.Objects, func(i, j int) bool {
		if plan.Objects[i].Critical != plan.Objects[j].Critical {
			return plan.Objects[i].Critical < plan.Objects[j].Critical
		}
		return plan.Objects[i].Object < plan.Objects[j].Object
	})
	return plan, nil
}
