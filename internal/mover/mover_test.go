package mover

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

var testDist = core.PriorityDistribution{0.3, 0.3, 0.4}

func testCode(t *testing.T, seed int64, n int) (*core.Levels, [][]byte, []*core.CodedBlock) {
	t.Helper()
	levels, err := core.NewLevels(3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := core.NewEncoder(core.PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, testDist, n)
	if err != nil {
		t.Fatal(err)
	}
	return levels, sources, blocks
}

// testFleet starts n real TCP daemons and a placement layer over the
// first placedN of them; the rest are standby nodes a test can Join.
type testFleet struct {
	servers []*store.Server
	addrs   []string
	placed  *store.Placed
}

func newTestFleet(t *testing.T, n, placedN, levels int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		srv, err := store.NewServer(store.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, srv.Addr())
	}
	clients := make([]*store.Client, placedN)
	for i := 0; i < placedN; i++ {
		cl, err := store.NewClient(store.ClientConfig{
			Addr:        f.addrs[i],
			DialTimeout: time.Second,
			OpTimeout:   2 * time.Second,
			Retry: store.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	placed, err := store.NewPlaced(clients, levels, store.PlacedConfig{Replication: 2, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.placed = placed
	t.Cleanup(func() {
		placed.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, s := range f.servers {
			s.Shutdown(sctx)
		}
	})
	return f
}

// pickMovingNames returns n object names for a fleet whose third node
// is about to join, guaranteeing at least one of them changes owners.
// A scratch placement ring over all three addresses predicts post-join
// ownership; names whose pre-join owner set survives the join intact
// are kept only to fill out the count.
func pickMovingNames(t *testing.T, f *testFleet, n int) []string {
	t.Helper()
	clients := make([]*store.Client, len(f.addrs))
	for i, addr := range f.addrs {
		cl, err := store.NewClient(store.ClientConfig{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	scratch, err := store.NewPlaced(clients, 3, store.PlacedConfig{Replication: 2, Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()

	var movers, stayers []string
	for i := 0; len(movers)+len(stayers) < 4*n && len(movers) < n; i++ {
		name := fmt.Sprintf("migrate-%d", i)
		obj := core.NamedObject(name)
		before, err := f.placed.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		after, err := scratch.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		afterSet := make(map[string]bool, len(after))
		for _, a := range after {
			afterSet[a] = true
		}
		moves := false
		for _, a := range before {
			if !afterSet[a] {
				moves = true
				break
			}
		}
		if moves {
			movers = append(movers, name)
		} else {
			stayers = append(stayers, name)
		}
	}
	if len(movers) == 0 {
		t.Fatalf("no candidate name changes owners when %s joins", f.addrs[2])
	}
	names := append(movers, stayers...)
	if len(names) > n {
		names = names[:n]
	}
	return names
}

// TestMigrateOnJoin is the tentpole scenario: a fleet of two carries a
// dozen objects, a third node joins and takes over part of the ring,
// the mover re-homes the displaced objects most-critical-first,
// verifies the new owners, and wipes the old ones — after which level 0
// decodes bit-exactly from the new owners alone.
func TestMigrateOnJoin(t *testing.T) {
	ctx := context.Background()
	const objects = 12
	const blocksPerObject = 24
	f := newTestFleet(t, 3, 2, 3)

	// Ring positions depend on the fleet's random ports, so pick object
	// names known to change owners when node 2 joins: placement is pure
	// ring math, and a scratch ring over all three nodes gives post-join
	// ownership without mutating the real one.
	names := pickMovingNames(t, f, objects)

	levels, _, _ := testCode(t, 1, 1)
	type objState struct {
		obj     core.ObjectID
		sources [][]byte
		owners  []string
	}
	objs := make([]objState, objects)
	for i := range objs {
		lv, sources, blocks := testCode(t, int64(100+i), blocksPerObject)
		levels = lv
		obj := core.NamedObject(names[i])
		for _, b := range blocks {
			b.Object = obj
		}
		if _, err := f.placed.PutAll(ctx, blocks); err != nil {
			t.Fatalf("client-visible put error before join: %v", err)
		}
		owners, err := f.placed.ReplicasForObject(obj)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = objState{obj: obj, sources: sources, owners: owners}
	}

	if err := f.placed.Join(f.addrs[2]); err != nil {
		t.Fatalf("join: %v", err)
	}

	// Ownership after the join, recomputed from the live ring — at least
	// one name was picked to move, the rest depend on the geometry.
	var moved []int
	for i, o := range objs {
		after, err := f.placed.ReplicasForObject(o.obj)
		if err != nil {
			t.Fatal(err)
		}
		afterSet := make(map[string]bool, len(after))
		for _, a := range after {
			afterSet[a] = true
		}
		for _, a := range o.owners {
			if !afterSet[a] {
				moved = append(moved, i)
				break
			}
		}
		objs[i].owners = after
	}
	if len(moved) == 0 {
		t.Fatalf("join displaced no object across %d objects — ring diff broken", objects)
	}

	m, err := New(f.placed, Config{
		Scheme:      core.PLC,
		Levels:      levels,
		Dist:        testDist,
		TotalBlocks: blocksPerObject,
		Workers:     3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.RunOnce(ctx)
	if err != nil {
		t.Fatalf("migration round: %v", err)
	}
	if got := len(rep.Plan.Objects); got != len(moved) {
		t.Fatalf("planned %d objects, want the %d that moved", got, len(moved))
	}
	if rep.Migrated != len(moved) || rep.Failed != 0 {
		t.Fatalf("migrated %d, failed %d, want %d/0", rep.Migrated, rep.Failed, len(moved))
	}
	if rep.DeletesIssued == 0 || rep.BlocksReclaimed == 0 {
		t.Fatalf("nothing reclaimed: %+v", rep)
	}

	// The plan is ordered most-critical-level-first.
	for i := 1; i < len(rep.Plan.Objects); i++ {
		if rep.Plan.Objects[i-1].Critical > rep.Plan.Objects[i].Critical {
			t.Fatalf("plan out of order: critical %d before %d",
				rep.Plan.Objects[i-1].Critical, rep.Plan.Objects[i].Critical)
		}
	}

	// A second round finds placement and data in agreement.
	rep, err = m.RunOnce(ctx)
	if err != nil {
		t.Fatalf("follow-up round: %v", err)
	}
	if len(rep.Plan.Objects) != 0 {
		t.Fatalf("second round still plans %d objects", len(rep.Plan.Objects))
	}

	// Old owners are wiped: no node outside the successor list holds a
	// single block of a migrated object.
	for _, i := range moved {
		o := objs[i]
		ownerSet := make(map[string]bool, len(o.owners))
		for _, a := range o.owners {
			ownerSet[a] = true
		}
		for _, addr := range f.addrs {
			if ownerSet[addr] {
				continue
			}
			cl, err := store.NewClient(store.ClientConfig{Addr: addr})
			if err != nil {
				t.Fatal(err)
			}
			st, err := cl.Stat(ctx)
			cl.Close()
			if err != nil {
				t.Fatal(err)
			}
			for _, os := range st.PerObject {
				if os.Object == o.obj {
					t.Fatalf("stale holder %s still carries %d blocks of %s", addr, os.Blocks, o.obj)
				}
			}
		}
	}

	// Level 0 decodes bit-exactly from the new owners alone — the
	// original owners' copies are gone, so this is the migrated data.
	for _, i := range moved {
		o := objs[i]
		clients := make([]*store.Client, len(o.owners))
		for j, addr := range o.owners {
			cl, err := store.NewClient(store.ClientConfig{Addr: addr})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			clients[j] = cl
		}
		repl, err := store.NewReplicated(clients, levels.Count(), store.ReplicatedConfig{Tolerance: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := repl.CollectObject(ctx, o.obj, -1)
		if err != nil {
			t.Fatalf("client-visible collect error after migration: %v", err)
		}
		dec, err := core.NewDecoder(core.PLC, levels, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b.Object != o.obj {
				t.Fatalf("collect leaked foreign object %s", b.Object)
			}
			if _, err := dec.Add(b); err != nil {
				t.Fatalf("decoder rejected migrated block: %v", err)
			}
		}
		if !dec.LevelDecoded(0) {
			t.Fatalf("object %s: critical level undecodable from new owners alone", o.obj)
		}
		for j := 0; j < levels.Size(0); j++ {
			src, err := dec.Source(j)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(src, o.sources[j]) {
				t.Fatalf("object %s: critical block %d corrupted by migration", o.obj, j)
			}
		}
	}
}

// TestKickOnMembershipChange wires the mover to the placement hook and
// checks a join triggers a round without waiting out the interval.
func TestKickOnMembershipChange(t *testing.T) {
	ctx := context.Background()
	f := newTestFleet(t, 3, 2, 3)
	levels, _, blocks := testCode(t, 3, 16)
	obj := core.NamedObject("kick")
	for _, b := range blocks {
		b.Object = obj
	}
	if _, err := f.placed.PutAll(ctx, blocks); err != nil {
		t.Fatal(err)
	}

	m, err := New(f.placed, Config{
		Scheme:      core.PLC,
		Levels:      levels,
		Dist:        testDist,
		TotalBlocks: 16,
		Interval:    time.Hour, // only Kick can trigger further rounds
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.placed.SetMembershipHook(func(store.MembershipChange) { m.Kick() })
	m.Start()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := m.Stop(sctx); err != nil {
			t.Fatal(err)
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for m.Rounds() < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	base := m.Rounds()
	if base < 1 {
		t.Fatal("initial round never ran")
	}
	if err := f.placed.Join(f.addrs[2]); err != nil {
		t.Fatal(err)
	}
	for m.Rounds() <= base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.Rounds() <= base {
		t.Fatalf("join did not kick a round within the deadline (still %d)", base)
	}
}

func TestThrottle(t *testing.T) {
	if newThrottle(0, 0) != nil {
		t.Fatal("zero rate should disable the throttle")
	}
	var tt *throttle
	if _, err := tt.wait(context.Background(), 1<<20); err != nil {
		t.Fatalf("nil throttle must admit everything: %v", err)
	}

	// A full bucket admits a burst instantly, then the rate gates.
	th := newThrottle(1<<20, 1<<20) // 1 MiB/s, 1 MiB burst
	t0 := time.Now()
	if _, err := th.wait(context.Background(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 200*time.Millisecond {
		t.Fatalf("burst admission took %v", d)
	}
	t0 = time.Now()
	if _, err := th.wait(context.Background(), 1<<18); err != nil { // 256 KiB ≈ 250ms refill
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("drained bucket admitted %v too fast: %v", 1<<18, d)
	}

	// Cancellation frees a blocked waiter.
	th = newThrottle(1024, 1024)
	if _, err := th.wait(context.Background(), 1024); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := th.wait(cctx, 1024); err == nil {
		t.Fatal("expected context error from a starved throttle")
	}

	// Oversized requests overdraw rather than deadlock.
	th = newThrottle(1<<30, 1024)
	if _, err := th.wait(context.Background(), 1<<20); err != nil {
		t.Fatalf("oversized request deadlocked: %v", err)
	}
}

func TestBlockKeyAndSortDeterminism(t *testing.T) {
	_, _, blocks := testCode(t, 9, 12)
	a := append([]*core.CodedBlock(nil), blocks...)
	b := append([]*core.CodedBlock(nil), blocks...)
	rand.New(rand.NewSource(2)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	sortBlocks(a)
	sortBlocks(b)
	for i := range a {
		if blockKey(a[i]) != blockKey(b[i]) {
			t.Fatalf("sortBlocks not order-insensitive at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Level > a[i].Level {
			t.Fatal("sortBlocks did not order by level")
		}
	}
}
