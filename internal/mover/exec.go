package mover

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/repair"
)

// objectResult tallies one object's migration attempt.
type objectResult struct {
	regenerated     int
	copied          int
	copies          int
	bytesCollected  int64
	bytesPlaced     int64
	deletesIssued   int
	blocksReclaimed int
	skippedLevels   int
	released        bool
}

// migrateObject re-homes one object: audit the current owners, fill
// their per-level deficits by recombining survivors gathered from the
// stale holders (and whatever the owners already received), verify the
// owners meet the provisioning targets, and only then reclaim the stale
// copies. Every step is idempotent, so a failed attempt retries from
// the audit with nothing lost — stale holders are never deleted before
// verification passes.
func (m *Mover) migrateObject(ctx context.Context, op ObjectPlan, rng *rand.Rand) (objectResult, error) {
	var res objectResult
	shard, err := m.placed.Shard(op.Object)
	if err != nil {
		return res, fmt.Errorf("mover: resolve shard %s: %w", op.Object, err)
	}
	acfg := repair.AuditConfig{
		Object: op.Object, Dist: m.cfg.Dist, TotalBlocks: m.cfg.TotalBlocks, Targets: m.cfg.Targets,
	}
	audit, err := repair.AuditFleet(ctx, shard, acfg)
	if err != nil {
		return res, fmt.Errorf("mover: audit %s: %w", op.Object, err)
	}
	if audit.Unreachable > 0 {
		return res, fmt.Errorf("mover: %s: %d owners unreachable, cannot verify a release", op.Object, audit.Unreachable)
	}

	// waived marks levels with no survivor anywhere — neither on the
	// owners nor on the stale holders. Their dimensions are already
	// lost; reclaiming the stale copies loses nothing more, so the
	// verification gate lets them through (and reports them).
	waived := make(map[int]bool)

	if deficient := audit.Deficient(); len(deficient) > 0 {
		maxLevel := deficient[len(deficient)-1].Level

		// Gather survivors: stale holders carry the data being re-homed,
		// the owners contribute anchors already transferred (or already
		// in place) so retries never double-move what arrived.
		ownerHeld := make(map[string]bool)
		var survivors []*core.CodedBlock
		seen := make(map[string]bool)
		ownerBlocks, err := shard.CollectObject(ctx, op.Object, maxLevel)
		if err != nil {
			return res, fmt.Errorf("mover: collect %s from owners: %w", op.Object, err)
		}
		for _, b := range ownerBlocks {
			k := blockKey(b)
			ownerHeld[k] = true
			if !seen[k] {
				seen[k] = true
				survivors = append(survivors, b)
				res.bytesCollected += int64(b.WireSize())
			}
		}
		for _, addr := range op.Stale {
			cl, err := m.placed.ClientFor(addr)
			if err != nil {
				return res, fmt.Errorf("mover: %s: %w", op.Object, err)
			}
			got, err := cl.GetObject(ctx, op.Object, maxLevel)
			if err != nil {
				return res, fmt.Errorf("mover: collect %s from stale holder %s: %w", op.Object, addr, err)
			}
			moved := 0
			for _, b := range got {
				if k := blockKey(b); !seen[k] {
					seen[k] = true
					survivors = append(survivors, b)
					moved += b.WireSize()
				}
			}
			res.bytesCollected += int64(moved)
			if err := m.throttleWait(ctx, moved); err != nil {
				return res, err
			}
		}
		sortBlocks(survivors) // deterministic sampling under a fixed seed
		byLevel := make(map[int][]*core.CodedBlock)
		for _, b := range survivors {
			byLevel[b.Level] = append(byLevel[b.Level], b)
		}

		for _, lr := range deficient {
			anchors := byLevel[lr.Level]
			if len(anchors) == 0 {
				waived[lr.Level] = true
				res.skippedLevels++
				continue
			}
			var padding []*core.CodedBlock
			if m.cfg.Scheme != core.SLC {
				for lvl := 0; lvl < lr.Level; lvl++ {
					padding = append(padding, byLevel[lvl]...)
				}
			}
			// Raw-copy fallback order: blocks the owners lack first, so a
			// shard at minimum rank transfers its survivors verbatim
			// instead of spinning on server-side dedup.
			var fresh []*core.CodedBlock
			for _, b := range anchors {
				if !ownerHeld[blockKey(b)] {
					fresh = append(fresh, b)
				}
			}
			copyIdx := 0
			prefer := preferOrder(lr.PerReplica)
			need := (lr.Deficit + lr.Replicas - 1) / lr.Replicas
			for ; need > 0; need-- {
				nb, _, err := core.RecombineRanked(rng, m.cfg.Scheme, m.cfg.Levels, m.sample(rng, anchors, padding))
				raw := false
				if errors.Is(err, core.ErrDegenerateInputs) {
					// The survivors span a minimal space — recombining
					// cannot produce anything new, so copy them verbatim.
					if copyIdx >= len(fresh) {
						break // every distinct survivor already placed
					}
					nb, raw = fresh[copyIdx], true
					copyIdx++
				} else if err != nil {
					return res, fmt.Errorf("mover: recombine %s level %d: %w", op.Object, lr.Level, err)
				}
				placed := nb.WireSize() * lr.Replicas
				if err := m.throttleWait(ctx, placed); err != nil {
					return res, err
				}
				if err := shard.PutPreferring(ctx, nb, prefer); err != nil {
					return res, fmt.Errorf("mover: place %s level %d: %w", op.Object, lr.Level, err)
				}
				if raw {
					res.copied++
				} else {
					res.regenerated++
				}
				res.copies += lr.Replicas
				res.bytesPlaced += int64(placed)
			}
		}
	}

	// Verify before release: the owners must meet every level's copy
	// target (waived levels excepted) with the whole shard answering.
	check, err := repair.AuditFleet(ctx, shard, acfg)
	if err != nil {
		return res, fmt.Errorf("mover: verify %s: %w", op.Object, err)
	}
	if check.Unreachable > 0 {
		return res, fmt.Errorf("mover: verify %s: %d owners unreachable", op.Object, check.Unreachable)
	}
	for _, lr := range check.Deficient() {
		if !waived[lr.Level] {
			return res, fmt.Errorf("mover: verify %s: level %d holds %d/%d copies",
				op.Object, lr.Level, lr.HaveCopies, lr.WantCopies)
		}
	}

	// Release: the owners hold everything the targets ask for, so the
	// stale copies are redundant. Delete is idempotent — a retry after a
	// partial release just re-deletes nothing.
	for _, addr := range op.Stale {
		cl, err := m.placed.ClientFor(addr)
		if err != nil {
			return res, fmt.Errorf("mover: %s: %w", op.Object, err)
		}
		n, err := cl.Delete(ctx, op.Object)
		if err != nil {
			return res, fmt.Errorf("mover: reclaim %s from %s: %w", op.Object, addr, err)
		}
		res.deletesIssued++
		res.blocksReclaimed += n
	}
	res.released = true
	return res, nil
}

// throttleWait charges n bytes against the rate limit and records the
// stall.
func (m *Mover) throttleWait(ctx context.Context, n int) error {
	slept, err := m.limiter.wait(ctx, n)
	if slept > 0 {
		m.met.throttleWaitNs.Observe(int64(slept))
	}
	return err
}

// sample draws up to SampleSize blocks: at least one anchor of the
// target level, padded with lower-level survivors when the scheme
// allows mixing — the repair daemon's sampling, against a per-object
// generator so concurrent transfers stay deterministic.
func (m *Mover) sample(rng *rand.Rand, anchors, padding []*core.CodedBlock) []*core.CodedBlock {
	take := m.cfg.SampleSize
	if take > len(anchors) {
		take = len(anchors)
	}
	out := make([]*core.CodedBlock, 0, m.cfg.SampleSize)
	for _, i := range rng.Perm(len(anchors))[:take] {
		out = append(out, anchors[i])
	}
	if pad := m.cfg.SampleSize - len(out); pad > 0 && len(padding) > 0 {
		if pad > len(padding) {
			pad = len(padding)
		}
		for _, i := range rng.Perm(len(padding))[:pad] {
			out = append(out, padding[i])
		}
	}
	return out
}

// blockKey identifies a block by content — level, coefficient vector
// (dense form, so representation does not split identities), payload.
func blockKey(b *core.CodedBlock) string {
	coeff := b.DenseCoeff()
	buf := make([]byte, 0, 3+len(coeff)+len(b.Payload))
	buf = append(buf, byte(b.Level), byte(b.Level>>8))
	buf = append(buf, coeff...)
	buf = append(buf, 0)
	buf = append(buf, b.Payload...)
	return string(buf)
}

// preferOrder ranks replica indices for placement: fewest copies of the
// level first (the audit ran with every owner reachable, so no -1s).
func preferOrder(perReplica []int) []int {
	order := make([]int, len(perReplica))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return perReplica[order[a]] < perReplica[order[b]]
	})
	return order
}

// sortBlocks orders survivors by (level, dense coefficients, payload)
// so a fixed seed samples identically across runs.
func sortBlocks(blocks []*core.CodedBlock) {
	keys := make([][]byte, len(blocks))
	for i, b := range blocks {
		keys[i] = b.DenseCoeff()
	}
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if blocks[i].Level != blocks[j].Level {
			return blocks[i].Level < blocks[j].Level
		}
		if c := bytes.Compare(keys[i], keys[j]); c != 0 {
			return c < 0
		}
		return bytes.Compare(blocks[i].Payload, blocks[j].Payload) < 0
	})
	sorted := make([]*core.CodedBlock, len(blocks))
	for pos, i := range order {
		sorted[pos] = blocks[i]
	}
	copy(blocks, sorted)
}
