package mover

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/repair"
	"repro/internal/store"
)

// TestMoverRepairPutRace runs the mover daemon, a repair daemon, and a
// stream of foreground puts over the same placement layer while a node
// joins mid-load — the full contention triangle the migration layer
// must survive under the race detector, with zero client-visible
// errors.
func TestMoverRepairPutRace(t *testing.T) {
	ctx := context.Background()
	const blocksPerObject = 16
	f := newTestFleet(t, 3, 2, 3)

	levels, _, seedBlocks := testCode(t, 21, blocksPerObject)
	obj := core.NamedObject("race-seed")
	for _, b := range seedBlocks {
		b.Object = obj
	}
	if _, err := f.placed.PutAll(ctx, seedBlocks); err != nil {
		t.Fatal(err)
	}

	m, err := New(f.placed, Config{
		Scheme:      core.PLC,
		Levels:      levels,
		Dist:        testDist,
		TotalBlocks: blocksPerObject,
		Interval:    20 * time.Millisecond,
		RateLimit:   8 << 20,
		Seed:        31,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.placed.SetMembershipHook(func(ev store.MembershipChange) { m.Kick() })
	m.Start()

	rd, err := repair.NewObject(f.placed, obj, repair.Config{
		Scheme:      core.PLC,
		Levels:      levels,
		Dist:        testDist,
		TotalBlocks: blocksPerObject,
		Interval:    20 * time.Millisecond,
		Seed:        41,
	})
	if err != nil {
		t.Fatal(err)
	}
	rd.Start()

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lv, _, blocks := testCode(t, int64(1000+w*100+i), 8)
				_ = lv
				o := core.NamedObject(fmt.Sprintf("race-%d-%d", w, i))
				for _, b := range blocks {
					b.Object = o
				}
				if _, err := f.placed.PutAll(ctx, blocks); err != nil {
					errCh <- fmt.Errorf("put during churn: %w", err)
					return
				}
				if _, err := f.placed.Collect(ctx, o, 0); err != nil {
					errCh <- fmt.Errorf("collect during churn: %w", err)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	if err := f.placed.Join(f.addrs[2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)

	close(stop)
	wg.Wait()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Stop(sctx); err != nil {
		t.Fatalf("mover stop: %v", err)
	}
	if err := rd.Stop(sctx); err != nil {
		t.Fatalf("repair stop: %v", err)
	}
	select {
	case err := <-errCh:
		t.Fatalf("client-visible error during migration: %v", err)
	default:
	}
	if m.Rounds() == 0 {
		t.Fatal("mover never ran a round")
	}
}
