// Package mover re-homes coded blocks when ring membership changes.
//
// Consistent hashing tells every node where an object lives *now*; it
// says nothing about moving the blocks that landed under an older
// membership. After a join, the new successor owns an object it holds
// zero blocks of — reads still work only as long as the displaced
// nodes stay up, which is exactly the assumption churn breaks. The
// mover closes that gap: it diffs data placement against ring
// ownership and migrates until they agree.
//
// Each round:
//
//  1. plan: scan every reachable node's per-object inventory
//     (Stats().PerObject) and diff it against the ring's current
//     successor lists. A node holding an object it no longer owns is a
//     stale holder; the object joins the work list, ordered
//     most-critical-level-first (an object whose level-0 copies all sit
//     on stale holders outranks one missing only its tail levels).
//  2. transfer: for each planned object, audit the new owners and fill
//     their per-level deficits by recombining survivors collected from
//     the stale holders — fresh blocks, the paper's regeneration
//     primitive, not verbatim moves (with a verbatim-copy fallback when
//     the survivors are at minimum rank and recombination is
//     degenerate). Concurrency is bounded, transfers retry with
//     backoff, and a shared token bucket caps the byte rate.
//  3. verify + reclaim: re-audit the owners against the provisioning
//     targets; only when every level meets its copy target are the
//     stale holders sent Delete. A failed verification leaves the old
//     copies in place — migration never destroys the only copy.
//
// Planning from inventories (not from membership events) makes rounds
// idempotent and restart-safe: whatever a crashed mover left half-done
// is still visible as stale holdings to the next round. The
// OnMembershipChange hook only accelerates the loop via Kick; it is
// never load-bearing for correctness.
package mover

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/repair"
	"repro/internal/store"
)

// Config parameterizes a Mover.
type Config struct {
	// Scheme and Levels describe the code the fleet holds.
	Scheme core.Scheme
	Levels *core.Levels
	// Dist and TotalBlocks (or Targets) define the provisioning targets
	// migrated objects are verified against — the same knobs as
	// repair.AuditConfig, and they should carry the same values.
	Dist        core.PriorityDistribution
	TotalBlocks int
	Targets     []int
	// Interval is the pause between successful rounds. Default 5s; a
	// membership change cuts the wait short via Kick.
	Interval time.Duration
	// MaxBackoff caps the exponential backoff after failed rounds.
	// Default 16x Interval.
	MaxBackoff time.Duration
	// Jitter in [0, 1] is the randomized fraction shaved off each wait.
	// Default 0.2; negative disables jitter.
	Jitter float64
	// RoundTimeout bounds one plan+migrate round. Default 60s.
	RoundTimeout time.Duration
	// Workers bounds how many objects migrate concurrently. Default 2.
	Workers int
	// RateLimit caps the mover's aggregate byte rate (collected plus
	// placed wire bytes) in bytes/second; 0 means unlimited. Migration
	// is background work — the cap is what keeps foreground puts and
	// gets within their latency budget while the fleet rebalances.
	RateLimit int64
	// Burst is the token bucket's capacity; default max(RateLimit, 1 MiB).
	Burst int64
	// Attempts is how many times one object's migration is tried per
	// round before it is counted failed. Default 3.
	Attempts int
	// RetryBackoff is the base delay between an object's attempts,
	// doubling each failure. Default 250ms.
	RetryBackoff time.Duration
	// SampleSize is how many survivors feed each recombination. Default 8.
	SampleSize int
	// Seed seeds recombination and jitter (0 means 1); each object
	// derives its own generator from Seed and its ID, so bounded
	// concurrency does not perturb determinism.
	Seed int64
	// Metrics, when non-nil, receives the mover_* series (DESIGN.md §15).
	Metrics *metrics.Registry
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16 * c.Interval
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 60 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Burst <= 0 {
		c.Burst = 1 << 20
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Report summarizes one migration round.
type Report struct {
	// Plan is the work list the round executed.
	Plan *Plan
	// Migrated counts objects fully re-homed, verified, and reclaimed.
	Migrated int
	// Failed counts objects whose migration did not complete this
	// round; they stay planned (the stale holdings persist) and retry
	// next round.
	Failed int
	// Regenerated and Copied count blocks placed on new owners: fresh
	// recombinations, and verbatim copies (the minimum-rank fallback).
	Regenerated int
	Copied      int
	// Copies is the fleet-wide copy total those placements aimed at.
	Copies int
	// BytesCollected and BytesPlaced are the wire volumes moved.
	BytesCollected int64
	BytesPlaced    int64
	// DeletesIssued counts reclaim calls to stale holders;
	// BlocksReclaimed the copies they removed.
	DeletesIssued   int
	BlocksReclaimed int
	// SkippedLevels counts level transfers waived for lack of any
	// survivor — lost data, which migration cannot conjure back.
	SkippedLevels int
}

// Mover is the background migration loop over a placement ring. Every
// interval — or immediately upon Kick — it plans and executes one
// migration round. Failed rounds back off exponentially with jitter.
type Mover struct {
	placed  *store.Placed
	cfg     Config
	met     moverMetrics
	limiter *throttle

	mu   sync.Mutex // serializes rounds and guards rng, last, runs
	rng  *rand.Rand
	last Report
	runs int

	ctx      context.Context
	cancel   context.CancelFunc
	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	started  bool
	stopOnce sync.Once
}

// New validates the configuration and returns a stopped mover; call
// Start to launch the loop, or RunOnce to drive rounds manually.
func New(p *store.Placed, cfg Config) (*Mover, error) {
	if p == nil {
		return nil, fmt.Errorf("mover: nil placed store")
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("mover: invalid scheme %v", cfg.Scheme)
	}
	if cfg.Levels == nil {
		return nil, fmt.Errorf("mover: nil levels")
	}
	if cfg.Levels.Count() != p.Levels() {
		return nil, fmt.Errorf("mover: code has %d levels, store replicates %d", cfg.Levels.Count(), p.Levels())
	}
	acfg := repair.AuditConfig{Dist: cfg.Dist, TotalBlocks: cfg.TotalBlocks, Targets: cfg.Targets}
	if _, err := acfg.DistinctTargets(p.Levels()); err != nil {
		return nil, fmt.Errorf("mover: %w", err)
	}
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Mover{
		placed:  p,
		cfg:     cfg,
		met:     newMoverMetrics(cfg.Metrics),
		limiter: newThrottle(cfg.RateLimit, cfg.Burst),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ctx:     ctx,
		cancel:  cancel,
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Kick requests an immediate round, collapsing any pending wait or
// backoff. Wire it to PlacedConfig.OnMembershipChange so migration
// starts the moment placement shifts. Never blocks; kicks coalesce.
func (m *Mover) Kick() {
	m.met.kicks.Inc()
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// Start launches the background loop. The first round runs immediately.
// Start is idempotent.
func (m *Mover) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	go m.loop()
}

// Stop shuts the mover down gracefully: the loop exits after the
// in-flight round completes. If ctx expires first, the round is
// cancelled and Stop returns the context error once the loop has
// exited. Safe to call more than once, and before Start.
func (m *Mover) Stop(ctx context.Context) error {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if !started {
		m.cancel()
		return nil
	}
	select {
	case <-m.done:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel()
		<-m.done
		return ctx.Err()
	}
}

// Rounds returns how many migration rounds have run.
func (m *Mover) Rounds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

// LastReport returns the most recent round's report.
func (m *Mover) LastReport() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

func (m *Mover) loop() {
	defer close(m.done)
	failures := 0
	timer := time.NewTimer(0) // first round immediately
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		case <-m.kick:
			// A membership change outranks the schedule: run now. The
			// timer is drained so the reset below starts clean.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		rctx, rcancel := context.WithTimeout(m.ctx, m.cfg.RoundTimeout)
		_, err := m.RunOnce(rctx)
		rcancel()
		if m.ctx.Err() != nil {
			return
		}
		wait := m.cfg.Interval
		if err != nil {
			// Jittered exponential backoff, as in the repair daemon: a
			// dark fleet is probed gently until it answers again.
			failures++
			for i := 1; i < failures && wait < m.cfg.MaxBackoff; i++ {
				wait *= 2
			}
			if wait > m.cfg.MaxBackoff {
				wait = m.cfg.MaxBackoff
			}
		} else {
			failures = 0
		}
		m.met.consecutiveFailures.Set(int64(failures))
		m.met.backoffNs.Set(int64(wait))
		timer.Reset(m.jittered(wait))
	}
}

func (m *Mover) jittered(wait time.Duration) time.Duration {
	if m.cfg.Jitter <= 0 {
		return wait
	}
	m.mu.Lock()
	f := 1 - m.cfg.Jitter*m.rng.Float64()
	m.mu.Unlock()
	return time.Duration(float64(wait) * f)
}

// RunOnce performs one migration round — plan, transfer, verify,
// reclaim — and returns its report. The error is non-nil when planning
// failed or any object's migration did, which the loop answers with
// backoff; partially-migrated objects stay visible as stale holdings
// and are re-planned next round.
func (m *Mover) RunOnce(ctx context.Context) (Report, error) {
	t0 := time.Now()
	rep, err := m.runOnce(ctx)
	m.met.roundNs.ObserveSince(t0)
	m.met.rounds.Inc()
	if err != nil {
		m.met.roundErrors.Inc()
	}
	return rep, err
}

func (m *Mover) runOnce(ctx context.Context) (Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs++
	acfg := repair.AuditConfig{Dist: m.cfg.Dist, TotalBlocks: m.cfg.TotalBlocks, Targets: m.cfg.Targets}
	targets, err := acfg.DistinctTargets(m.placed.Levels())
	if err != nil {
		return Report{}, fmt.Errorf("mover: %w", err)
	}
	plan, err := m.plan(ctx, targets)
	if err != nil {
		return Report{}, fmt.Errorf("mover: plan: %w", err)
	}
	rep := Report{Plan: plan}
	defer func() { m.last = rep }()
	m.met.objectsPlanned.Add(uint64(len(plan.Objects)))
	if len(plan.Objects) == 0 {
		return rep, nil
	}

	// Bounded workers pull plans in order, so the most critical objects
	// start first even though completions interleave.
	workers := m.cfg.Workers
	if workers > len(plan.Objects) {
		workers = len(plan.Objects)
	}
	results := make([]objectResult, len(plan.Objects))
	errs := make([]error, len(plan.Objects))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(plan.Objects) || ctx.Err() != nil {
					return
				}
				results[i], errs[i] = m.migrateAttempts(ctx, plan.Objects[i])
			}
		}()
	}
	wg.Wait()

	var firstErr error
	for i, res := range results {
		rep.Regenerated += res.regenerated
		rep.Copied += res.copied
		rep.Copies += res.copies
		rep.BytesCollected += res.bytesCollected
		rep.BytesPlaced += res.bytesPlaced
		rep.DeletesIssued += res.deletesIssued
		rep.BlocksReclaimed += res.blocksReclaimed
		rep.SkippedLevels += res.skippedLevels
		if res.released {
			rep.Migrated++
		}
		if errs[i] != nil {
			rep.Failed++
			m.met.objectErrors.Inc()
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
	}
	m.met.objectsMigrated.Add(uint64(rep.Migrated))
	m.met.blocksRegenerated.Add(uint64(rep.Regenerated))
	m.met.blocksCopied.Add(uint64(rep.Copied))
	m.met.copiesPlaced.Add(uint64(rep.Copies))
	m.met.bytesCollected.Add(uint64(rep.BytesCollected))
	m.met.bytesPlaced.Add(uint64(rep.BytesPlaced))
	m.met.levelsSkipped.Add(uint64(rep.SkippedLevels))
	m.met.deletesIssued.Add(uint64(rep.DeletesIssued))
	m.met.blocksReclaimed.Add(uint64(rep.BlocksReclaimed))
	if firstErr != nil {
		return rep, fmt.Errorf("mover: %d/%d objects failed: %w", rep.Failed, len(plan.Objects), firstErr)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// migrateAttempts drives one object through up to Attempts tries with
// doubling backoff. Each object recombines from its own generator,
// seeded by Seed and the object ID, so worker interleaving never
// changes what gets placed.
func (m *Mover) migrateAttempts(ctx context.Context, op ObjectPlan) (objectResult, error) {
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ int64(op.Object)))
	var res objectResult
	var err error
	for attempt := 0; attempt < m.cfg.Attempts; attempt++ {
		if attempt > 0 {
			backoff := m.cfg.RetryBackoff << (attempt - 1)
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return res, err
			case <-timer.C:
			}
		}
		var r objectResult
		r, err = m.migrateObject(ctx, op, rng)
		// Work done by a failed attempt still moved bytes; account it.
		res.regenerated += r.regenerated
		res.copied += r.copied
		res.copies += r.copies
		res.bytesCollected += r.bytesCollected
		res.bytesPlaced += r.bytesPlaced
		res.deletesIssued += r.deletesIssued
		res.blocksReclaimed += r.blocksReclaimed
		res.skippedLevels += r.skippedLevels
		if err == nil {
			res.released = r.released
			return res, nil
		}
		if ctx.Err() != nil {
			return res, err
		}
	}
	return res, err
}
