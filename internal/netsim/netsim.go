// Package netsim provides a deterministic discrete-event simulation engine
// and node-churn processes for the persistence experiments: nodes produce
// measurements over time, disseminate coded blocks, fail unpredictably,
// and a collector later retrieves what survived (Sec. 2's network model).
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Engine is a single-threaded discrete-event scheduler. Events fire in
// timestamp order; ties break in scheduling order, so a simulation driven
// by a seeded rand.Rand is fully reproducible.
type Engine struct {
	now    float64
	events eventHeap
	seq    uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time zero with no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule fires fn after the given delay (>= 0) of simulated time.
func (e *Engine) Schedule(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("netsim: negative delay %g", delay)
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt fires fn at absolute simulation time t (>= Now).
func (e *Engine) ScheduleAt(t float64, fn func()) error {
	if t < e.now {
		return fmt.Errorf("netsim: time %g is in the past (now %g)", t, e.now)
	}
	if fn == nil {
		return fmt.Errorf("netsim: nil event function")
	}
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.seq++
	return nil
}

// Step fires the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until none remain, returning the number fired.
func (e *Engine) Run() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t. It returns the number of events fired.
func (e *Engine) RunUntil(t float64) int {
	n := 0
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
		n++
	}
	if t > e.now {
		e.now = t
	}
	return n
}

// Lifetimes draws node lifetimes from an exponential distribution with the
// given mean — the standard memoryless churn model for both sensor
// batteries and P2P session lengths.
func Lifetimes(rng *rand.Rand, n int, mean float64) ([]float64, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("netsim: mean lifetime %g, want > 0", mean)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.ExpFloat64() * mean
	}
	return out, nil
}

// FailFraction returns a deterministic subset of f·n node indices to kill,
// drawn without replacement — the paper's "random subset of existing
// nodes" failure snapshot.
func FailFraction(rng *rand.Rand, n int, f float64) ([]int, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("netsim: failure fraction %g outside [0, 1]", f)
	}
	k := int(f * float64(n))
	return rng.Perm(n)[:k], nil
}

// FailRegion models a geographically correlated outage — a storm, fire or
// power cut: every node within the given radius of a uniformly random
// epicenter fails. It returns the victim indices. Correlated failures are
// the hard case for geographic pre-distribution, since they wipe out
// whole neighborhoods of cache locations at once.
func FailRegion(rng *rand.Rand, pos []geom.Point, radius float64) ([]int, error) {
	if radius < 0 {
		return nil, fmt.Errorf("netsim: negative outage radius %g", radius)
	}
	center := geom.Point{X: rng.Float64(), Y: rng.Float64()}
	r2 := radius * radius
	var victims []int
	for i, p := range pos {
		if p.Dist2(center) <= r2 {
			victims = append(victims, i)
		}
	}
	return victims, nil
}
