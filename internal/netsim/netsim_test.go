package netsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := e.ScheduleAt(-1, func() {}); err == nil {
		t.Error("past time accepted")
	}
	if err := e.Schedule(1, nil); err == nil {
		t.Error("nil event function accepted")
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		if err := e.Schedule(d, func() { fired = append(fired, d) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Run(); n != 5 {
		t.Fatalf("Run fired %d events, want 5", n)
	}
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %g after run, want 5", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(1, func() { fired = append(fired, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", fired)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			if err := e.Schedule(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(1, tick); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if count != 5 {
		t.Errorf("ticked %d times, want 5", count)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %g, want 5", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		if err := e.Schedule(float64(i), func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.RunUntil(5.5); n != 5 || fired != 5 {
		t.Errorf("RunUntil fired %d (%d), want 5", n, fired)
	}
	if e.Now() != 5.5 {
		t.Errorf("Now = %g, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	// RunUntil earlier than now just reports zero.
	if n := e.RunUntil(1); n != 0 {
		t.Errorf("backward RunUntil fired %d", n)
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

func TestLifetimesStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const mean = 40.0
	ls, err := Lifetimes(rng, 20000, mean)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range ls {
		if l < 0 {
			t.Fatal("negative lifetime")
		}
		sum += l
	}
	got := sum / float64(len(ls))
	if math.Abs(got-mean) > 1.5 {
		t.Errorf("empirical mean %g, want %g±1.5", got, mean)
	}
	if _, err := Lifetimes(rng, 5, 0); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestFailFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx, err := FailFraction(rng, 100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 30 {
		t.Fatalf("killed %d nodes, want 30", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad victim %d", i)
		}
		seen[i] = true
	}
	if _, err := FailFraction(rng, 10, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := FailFraction(rng, 10, 1.1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	all, err := FailFraction(rng, 10, 1)
	if err != nil || len(all) != 10 {
		t.Errorf("full kill = %v, %v", all, err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(7))
		var trace []float64
		var tick func()
		tick = func() {
			trace = append(trace, e.Now())
			if len(trace) < 50 {
				if err := e.Schedule(rng.ExpFloat64(), tick); err != nil {
					t.Error(err)
				}
			}
		}
		if err := e.Schedule(0, tick); err != nil {
			t.Fatal(err)
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestFailRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pos := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.5, Y: 0.5}, {X: 0.9, Y: 0.9}}
	victims, err := FailRegion(rng, pos, 2) // radius covers the whole square
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 3 {
		t.Errorf("full-coverage outage killed %d/3", len(victims))
	}
	none, err := FailRegion(rng, pos, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) > 1 {
		t.Errorf("zero-radius outage killed %d nodes", len(none))
	}
	if _, err := FailRegion(rng, pos, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestFailRegionIsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pos := make([]geom.Point, 500)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	victims, err := FailRegion(rng, pos, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) == 0 {
		t.Skip("epicenter landed in an empty corner")
	}
	// Victims must be mutually close: any two within 2*radius.
	for _, a := range victims {
		for _, b := range victims {
			if pos[a].Dist(pos[b]) > 0.4+1e-12 {
				t.Fatalf("victims %d and %d are %.3f apart", a, b, pos[a].Dist(pos[b]))
			}
		}
	}
}
