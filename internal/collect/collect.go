// Package collect implements the data-collecting side of the system: a
// sink retrieves coded blocks from (surviving) caches in random order and
// decodes progressively, stopping as soon as the partially decoded data
// fulfill the application requirement (Sec. 3.2) — or when the caches are
// exhausted.
package collect

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Options controls a collection run.
type Options struct {
	// Context, when non-nil, makes a long collection run cancelable:
	// Run checks it between blocks and returns the context's error on
	// cancellation or deadline expiry.
	Context context.Context
	// TargetLevels stops collection once this many priority levels have
	// decoded; 0 means "decode as much as the caches allow".
	TargetLevels int
	// MaxBlocks caps the number of blocks processed; 0 means no cap.
	MaxBlocks int
	// PayloadLen must match the blocks' payload size.
	PayloadLen int
	// CurveStride records a decoding-curve point every this many processed
	// blocks (0 disables curve recording).
	CurveStride int
}

// CurvePoint is one sample of the decoding curve: after processing M
// blocks, Levels priority levels were decoded.
type CurvePoint struct {
	M      int
	Levels int
}

// Result summarizes a collection run.
type Result struct {
	// Processed is the number of coded blocks pulled from caches.
	Processed int
	// Innovative is how many of them increased the decoder's rank.
	Innovative int
	// DecodedLevels is the strict-priority level count at the end.
	DecodedLevels int
	// DecodedBlocks is the number of individually recovered source blocks.
	DecodedBlocks int
	// Complete reports whether every source block was recovered.
	Complete bool
	// Curve holds decoding-curve samples when CurveStride was set.
	Curve []CurvePoint
}

// Run pulls the given coded blocks in random order into a fresh decoder
// and returns the outcome together with the decoder (for payload access).
func Run(rng *rand.Rand, scheme core.Scheme, levels *core.Levels, blocks []*core.CodedBlock, opts Options) (Result, *core.Decoder, error) {
	if rng == nil {
		return Result{}, nil, fmt.Errorf("collect: nil rng")
	}
	if opts.TargetLevels < 0 || (levels != nil && opts.TargetLevels > levels.Count()) {
		return Result{}, nil, fmt.Errorf("collect: target %d levels out of range", opts.TargetLevels)
	}
	dec, err := core.NewDecoder(scheme, levels, opts.PayloadLen)
	if err != nil {
		return Result{}, nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var res Result
	order := rng.Perm(len(blocks))
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			return Result{}, nil, err
		}
		if opts.MaxBlocks > 0 && res.Processed >= opts.MaxBlocks {
			break
		}
		innovative, err := dec.Add(blocks[idx])
		if err != nil {
			return Result{}, nil, fmt.Errorf("collect: block %d: %w", idx, err)
		}
		res.Processed++
		if innovative {
			res.Innovative++
		}
		if opts.CurveStride > 0 && res.Processed%opts.CurveStride == 0 {
			res.Curve = append(res.Curve, CurvePoint{M: res.Processed, Levels: dec.DecodedLevels()})
		}
		if opts.TargetLevels > 0 && dec.DecodedLevels() >= opts.TargetLevels {
			break
		}
		if dec.Complete() {
			break
		}
	}
	res.DecodedLevels = dec.DecodedLevels()
	res.DecodedBlocks = dec.DecodedBlocks()
	res.Complete = dec.Complete()
	return res, dec, nil
}
