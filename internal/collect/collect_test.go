package collect

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func mustLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func makeBlocks(t testing.TB, scheme core.Scheme, l *core.Levels, m int, seed int64) []*core.CodedBlock {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	enc, err := core.NewEncoder(scheme, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, core.NewUniformDistribution(l.Count()), m)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestRunValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	if _, _, err := Run(nil, core.PLC, l, nil, Options{}); err == nil {
		t.Error("nil rng accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Run(rng, core.PLC, l, nil, Options{TargetLevels: -1}); err == nil {
		t.Error("negative target accepted")
	}
	if _, _, err := Run(rng, core.PLC, l, nil, Options{TargetLevels: 3}); err == nil {
		t.Error("target beyond level count accepted")
	}
	if _, _, err := Run(rng, core.Scheme(0), l, nil, Options{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestRunDecodesEverything(t *testing.T) {
	l := mustLevels(t, 3, 3, 3)
	blocks := makeBlocks(t, core.PLC, l, 40, 2)
	res, dec, err := Run(rand.New(rand.NewSource(3)), core.PLC, l, blocks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.DecodedLevels != 3 || res.DecodedBlocks != 9 {
		t.Errorf("result %+v, want complete decode", res)
	}
	if dec == nil || !dec.Complete() {
		t.Error("returned decoder not complete")
	}
	// Early stop: the run must not consume all 40 blocks once rank 9 is
	// reached.
	if res.Processed == len(blocks) && res.Innovative < res.Processed {
		t.Errorf("run did not stop at completion: processed %d", res.Processed)
	}
	if res.Innovative != 9 {
		t.Errorf("innovative = %d, want 9", res.Innovative)
	}
}

func TestRunStopsAtTargetLevels(t *testing.T) {
	// Small level 0 inside a large level 1, so level 0 decodes long before
	// the full system and the early stop is observable.
	l := mustLevels(t, 2, 20)
	blocks := makeBlocks(t, core.PLC, l, 80, 4)
	res, _, err := Run(rand.New(rand.NewSource(5)), core.PLC, l, blocks, Options{TargetLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Errorf("target not reached: %+v", res)
	}
	if res.Processed >= len(blocks) {
		t.Errorf("run consumed every cache without stopping early: %+v", res)
	}
	if res.Complete {
		t.Errorf("run kept collecting past its target: %+v", res)
	}
}

func TestRunMaxBlocksCap(t *testing.T) {
	l := mustLevels(t, 5, 5)
	blocks := makeBlocks(t, core.SLC, l, 30, 6)
	res, _, err := Run(rand.New(rand.NewSource(7)), core.SLC, l, blocks, Options{MaxBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 3 {
		t.Errorf("processed %d blocks, cap was 3", res.Processed)
	}
}

func TestRunCurveRecording(t *testing.T) {
	l := mustLevels(t, 4, 4)
	blocks := makeBlocks(t, core.PLC, l, 20, 8)
	res, _, err := Run(rand.New(rand.NewSource(9)), core.PLC, l, blocks, Options{CurveStride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve points recorded")
	}
	prevM, prevL := 0, 0
	for _, pt := range res.Curve {
		if pt.M <= prevM {
			t.Errorf("curve M not increasing: %v", res.Curve)
		}
		if pt.Levels < prevL {
			t.Errorf("decoded levels regressed in curve: %v", res.Curve)
		}
		prevM, prevL = pt.M, pt.Levels
	}
}

func TestRunEmptyCaches(t *testing.T) {
	l := mustLevels(t, 2, 2)
	res, _, err := Run(rand.New(rand.NewSource(10)), core.PLC, l, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processed != 0 || res.DecodedLevels != 0 || res.Complete {
		t.Errorf("empty collection produced %+v", res)
	}
}
