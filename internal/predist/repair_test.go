package predist

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
)

// repairScenario builds a deployed sensor network, disseminates sources
// and returns all the moving parts.
func repairScenario(t *testing.T) (*Deployment, *GeoTransport, [][]byte, *rand.Rand) {
	t.Helper()
	tr := sensorTransport(t, 30, 150)
	l := mustLevels(t, 4, 8, 12) // N = 24
	rng := rand.New(rand.NewSource(31))
	d, err := NewDeployment(Config{
		Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3),
		M: 100, Seed: 32, PayloadLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	sources := make([][]byte, l.Total())
	for i := range sources {
		sources[i] = make([]byte, 8)
		rng.Read(sources[i])
		if err := d.Disseminate(rng, tr, rng.Intn(150), i, sources[i]); err != nil {
			t.Fatal(err)
		}
	}
	return d, tr, sources, rng
}

func TestRepairValidation(t *testing.T) {
	d, tr, sources, rng := repairScenario(t)
	aliveAll := func(int) bool { return true }
	if _, err := d.Repair(rng, tr, 0, sources, nil); err == nil {
		t.Error("nil alive predicate accepted")
	}
	if _, err := d.Repair(rng, tr, 0, sources[:3], aliveAll); err == nil {
		t.Error("short sources accepted")
	}
	bad := make([][]byte, len(sources))
	for i := range bad {
		bad[i] = []byte{1}
	}
	if _, err := d.Repair(rng, tr, 0, bad, aliveAll); err == nil {
		t.Error("wrong payload length accepted")
	}
	// Unresolved deployment rejects Repair.
	fresh, err := NewDeployment(Config{
		Scheme: core.PLC, Levels: d.cfg.Levels, Dist: core.NewUniformDistribution(3),
		M: 10, PayloadLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Repair(rng, tr, 0, sources, aliveAll); err == nil {
		t.Error("unresolved deployment accepted")
	}
}

func TestRepairNoFailuresIsNoop(t *testing.T) {
	d, tr, sources, rng := repairScenario(t)
	before := d.Stats()
	n, err := d.Repair(rng, tr, 0, sources, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("repaired %d slots with no failures", n)
	}
	if d.Stats() != before {
		t.Error("no-op repair changed stats")
	}
}

// TestRepairRestoresRedundancy is the full cycle: fail 40% of nodes,
// collect + decode from survivors, repair the lost slots, fail ANOTHER 40%
// — without the repair that second wave would usually destroy the data;
// with it, full recovery must still succeed from the refreshed caches.
func TestRepairRestoresRedundancy(t *testing.T) {
	d, tr, sources, rng := repairScenario(t)

	// First failure wave.
	dead := make(map[int]bool)
	for i := 0; i < 150; i++ {
		if rng.Float64() < 0.4 {
			dead[i] = true
		}
	}
	alive := func(n int) bool { return !dead[n] }
	if err := tr.Router.SetAlive(aliveVector(150, alive)); err != nil {
		t.Fatal(err)
	}

	// The collector decodes everything from the survivors.
	res, dec, err := collect.Run(rng, core.PLC, d.cfg.Levels,
		d.CodedBlocks(alive), collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Skip("first wave already unrecoverable for this seed; repair moot")
	}
	decoded := dec.Sources()

	// Repair from a surviving origin.
	origin := 0
	for dead[origin] {
		origin++
	}
	repaired, err := d.Repair(rng, tr, origin, decoded, alive)
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("first wave killed no caches?")
	}
	// All owners must now be alive.
	for slot := 0; slot < d.M(); slot++ {
		if !alive(d.Owner(slot)) {
			t.Fatalf("slot %d still owned by dead node %d", slot, d.Owner(slot))
		}
	}

	// Second failure wave on the survivors.
	for i := 0; i < 150; i++ {
		if !dead[i] && rng.Float64() < 0.4 {
			dead[i] = true
		}
	}
	res, dec, err = collect.Run(rng, core.PLC, d.cfg.Levels,
		d.CodedBlocks(alive), collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("repaired deployment lost data after the second wave (%d caches left)",
			len(d.CodedBlocks(alive)))
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("source %d corrupted through repair", i)
		}
	}
}

// TestRepairedBlocksRespectSupport: repaired caches must still be valid
// scheme blocks.
func TestRepairedBlocksRespectSupport(t *testing.T) {
	d, tr, sources, rng := repairScenario(t)
	dead := map[int]bool{}
	for i := 0; i < 150; i += 3 {
		dead[i] = true
	}
	alive := func(n int) bool { return !dead[n] }
	if err := tr.Router.SetAlive(aliveVector(150, alive)); err != nil {
		t.Fatal(err)
	}
	origin := 1
	if _, err := d.Repair(rng, tr, origin, sources, alive); err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecoder(core.PLC, d.cfg.Levels, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.CodedBlocks(alive) {
		if _, err := dec.Add(b); err != nil {
			t.Fatalf("repaired block violates support: %v", err)
		}
	}
}

func aliveVector(n int, alive func(int) bool) []bool {
	v := make([]bool, n)
	for i := range v {
		v[i] = alive(i)
	}
	return v
}
