package predist

import (
	"fmt"

	"repro/internal/chord"
	"repro/internal/geom"
	"repro/internal/gpsr"
)

// GeoTransport adapts a GPSR router to the Transport interface — the
// sensor-network instantiation of the protocol.
type GeoTransport struct {
	Router *gpsr.Router
	Nodes  int
}

var _ Transport = (*GeoTransport)(nil)

// NewGeoTransport wraps a GPSR router over a graph with the given node
// count.
func NewGeoTransport(r *gpsr.Router, nodes int) (*GeoTransport, error) {
	if r == nil {
		return nil, fmt.Errorf("predist: nil router")
	}
	return &GeoTransport{Router: r, Nodes: nodes}, nil
}

// NumNodes returns the node population size.
func (t *GeoTransport) NumNodes() int { return t.Nodes }

// Home returns the alive node closest to p.
func (t *GeoTransport) Home(p geom.Point) (int, error) { return t.Router.HomeNode(p) }

// Route GPSR-routes from origin to p's home node.
func (t *GeoTransport) Route(origin int, p geom.Point) (int, int, error) {
	path, err := t.Router.Route(origin, p)
	if err != nil {
		return 0, 0, err
	}
	return path[len(path)-1], len(path) - 1, nil
}

// DHTTransport adapts a Chord ring to the Transport interface — the P2P
// instantiation. A location maps to a ring key through its X coordinate,
// matching the paper's one-dimensional DHT geometric space.
type DHTTransport struct {
	Ring *chord.Ring
}

var _ Transport = (*DHTTransport)(nil)

// NewDHTTransport wraps a Chord ring.
func NewDHTTransport(r *chord.Ring) (*DHTTransport, error) {
	if r == nil {
		return nil, fmt.Errorf("predist: nil ring")
	}
	return &DHTTransport{Ring: r}, nil
}

// NumNodes returns the ring population size.
func (t *DHTTransport) NumNodes() int { return t.Ring.Len() }

// Home returns the alive successor of the location's key.
func (t *DHTTransport) Home(p geom.Point) (int, error) {
	return t.Ring.Successor(chord.PointToKey(p.X))
}

// Route performs a Chord lookup from origin for the location's key.
func (t *DHTTransport) Route(origin int, p geom.Point) (int, int, error) {
	return t.Ring.Lookup(origin, chord.PointToKey(p.X))
}
