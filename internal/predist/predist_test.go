package predist

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/chord"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gpsr"
)

func mustLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func sensorTransport(t testing.TB, seed int64, nodes int) *GeoTransport {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *geom.Graph
	for {
		pos := geom.RandomPoints(rng, nodes)
		var err error
		g, err = geom.NewUnitDiskGraph(pos, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if g.Connected() {
			break
		}
	}
	r, err := gpsr.New(g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewGeoTransport(r, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func dhtTransport(t testing.TB, seed int64, nodes int) *DHTTransport {
	t.Helper()
	ring, err := chord.NewRandom(rand.New(rand.NewSource(seed)), nodes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDHTTransport(ring)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	good := Config{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 10}
	if _, err := NewDeployment(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Scheme: core.PLC, Dist: core.NewUniformDistribution(2), M: 10},
		{Scheme: core.Scheme(0), Levels: l, Dist: core.NewUniformDistribution(2), M: 10},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3), M: 10},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 0},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 10, Fanout: -1},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 10, PayloadLen: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDeployment(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestApportionMatchesDistribution(t *testing.T) {
	l := mustLevels(t, 50, 100, 350)
	d, err := NewDeployment(Config{
		Scheme: core.PLC, Levels: l,
		Dist: core.PriorityDistribution{0.5138, 0.0768, 0.4094},
		M:    1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := d.PartSizes()
	total := 0
	for i, s := range sizes {
		total += s
		exact := []float64{513.8, 76.8, 409.4}[i]
		if float64(s) < exact-1 || float64(s) > exact+1 {
			t.Errorf("part %d has %d slots, want ~%g", i, s, exact)
		}
	}
	if total != 1000 {
		t.Errorf("parts sum to %d, want 1000", total)
	}
}

func TestApportionZeroShare(t *testing.T) {
	l := mustLevels(t, 5, 5, 5)
	d, err := NewDeployment(Config{
		Scheme: core.PLC, Levels: l,
		Dist: core.PriorityDistribution{0, 0.6, 0.4},
		M:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := d.PartSizes()
	if sizes[0] != 0 || sizes[1]+sizes[2] != 10 {
		t.Errorf("part sizes %v for zero-share level", sizes)
	}
}

func TestSeededLocationsAgreeAcrossDeployments(t *testing.T) {
	l := mustLevels(t, 2, 2)
	cfg := Config{Scheme: core.SLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 20, Seed: 99}
	a, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.Location(i) != b.Location(i) {
			t.Fatal("same seed produced different locations — nodes would disagree")
		}
	}
}

func TestDisseminateRequiresResolution(t *testing.T) {
	l := mustLevels(t, 1, 1)
	d, err := NewDeployment(Config{Scheme: core.SLC, Levels: l, Dist: core.NewUniformDistribution(2), M: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := sensorTransport(t, 1, 60)
	rng := rand.New(rand.NewSource(2))
	if err := d.Disseminate(rng, tr, 0, 0, nil); err == nil {
		t.Error("dissemination before ResolveOwners accepted")
	}
}

// endToEnd runs the full protocol: deploy, resolve, disseminate all source
// blocks, collect from survivors, decode, verify payloads.
func endToEnd(t *testing.T, scheme core.Scheme, tr Transport, cfg Config, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Levels.Total()
	sources := make([][]byte, n)
	for i := range sources {
		sources[i] = make([]byte, cfg.PayloadLen)
		rng.Read(sources[i])
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		origin := rng.Intn(tr.NumNodes())
		if err := d.Disseminate(rng, tr, origin, i, sources[i]); err != nil {
			t.Fatal(err)
		}
	}
	blocks := d.CodedBlocks(nil)
	res, dec, err := collect.Run(rng, scheme, cfg.Levels, blocks, collect.Options{PayloadLen: cfg.PayloadLen})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("%v end-to-end: decoded %d/%d blocks from %d caches",
			scheme, res.DecodedBlocks, n, len(blocks))
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("%v end-to-end: source %d corrupted", scheme, i)
		}
	}
	if st := d.Stats(); st.Messages == 0 || st.Hops == 0 {
		t.Errorf("no dissemination cost recorded: %+v", st)
	}
}

func TestEndToEndSensorNetwork(t *testing.T) {
	l := mustLevels(t, 5, 10, 15)
	tr := sensorTransport(t, 3, 120)
	for _, scheme := range []core.Scheme{core.SLC, core.PLC} {
		cfg := Config{
			Scheme: scheme, Levels: l, Dist: core.NewUniformDistribution(3),
			M: 90, Seed: 4, PayloadLen: 8,
		}
		endToEnd(t, scheme, tr, cfg, 5)
	}
}

func TestEndToEndChordOverlay(t *testing.T) {
	l := mustLevels(t, 5, 10, 15)
	tr := dhtTransport(t, 6, 150)
	cfg := Config{
		Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3),
		M: 90, Seed: 7, PayloadLen: 8,
	}
	endToEnd(t, core.PLC, tr, cfg, 8)
}

// TestSupportInvariant verifies the protocol only ever delivers a source
// block to slots whose part may encode it, so every cached coded block
// respects its scheme's support (checked by core.Decoder.Add).
func TestSupportInvariant(t *testing.T) {
	l := mustLevels(t, 4, 4, 4)
	tr := sensorTransport(t, 9, 80)
	for _, scheme := range []core.Scheme{core.RLC, core.SLC, core.PLC} {
		rng := rand.New(rand.NewSource(10))
		d, err := NewDeployment(Config{
			Scheme: scheme, Levels: l, Dist: core.NewUniformDistribution(3),
			M: 30, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ResolveOwners(tr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < l.Total(); i++ {
			if err := d.Disseminate(rng, tr, rng.Intn(80), i, nil); err != nil {
				t.Fatal(err)
			}
		}
		dec, err := core.NewDecoder(scheme, l, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range d.CodedBlocks(nil) {
			if _, err := dec.Add(b); err != nil {
				t.Fatalf("%v: cached block violates its support: %v", scheme, err)
			}
		}
	}
}

// TestFanoutReducesMessages compares dense dissemination against the
// O(ln N) fanout: messages must drop by roughly the fanout ratio while
// decoding still completes.
func TestFanoutReducesMessages(t *testing.T) {
	l := mustLevels(t, 10, 10) // N = 20
	tr := sensorTransport(t, 12, 100)
	run := func(fanout int) (Stats, bool) {
		rng := rand.New(rand.NewSource(13))
		d, err := NewDeployment(Config{
			Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2),
			M: 80, Seed: 14, Fanout: fanout,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ResolveOwners(tr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < l.Total(); i++ {
			if err := d.Disseminate(rng, tr, rng.Intn(100), i, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, _, err := collect.Run(rng, core.PLC, l, d.CodedBlocks(nil), collect.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return d.Stats(), res.Complete
	}
	dense, denseOK := run(0)
	sparse, sparseOK := run(core.LogSparsity(l.Total()) * 2) // generous fanout
	if !denseOK {
		t.Fatal("dense dissemination failed to decode")
	}
	if !sparseOK {
		t.Fatal("sparse dissemination failed to decode")
	}
	if sparse.Messages >= dense.Messages {
		t.Errorf("fanout did not reduce messages: %d vs %d", sparse.Messages, dense.Messages)
	}
}

// TestTwoChoicesReducesMaxLoad is the Sec. 4 load-balancing claim.
func TestTwoChoicesReducesMaxLoad(t *testing.T) {
	l := mustLevels(t, 2, 2)
	tr := sensorTransport(t, 15, 100)
	maxLoad := func(two bool) int {
		d, err := NewDeployment(Config{
			Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2),
			M: 400, Seed: 16, TwoChoices: two,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ResolveOwners(tr); err != nil {
			t.Fatal(err)
		}
		return d.MaxLoad()
	}
	one, two := maxLoad(false), maxLoad(true)
	if two > one {
		t.Errorf("two choices worsened max load: %d vs %d", two, one)
	}
	if two == 0 || one == 0 {
		t.Error("no load recorded")
	}
}

// TestPartialRecoveryUnderFailures kills half the sensor nodes and checks
// that PLC still recovers the most important level while full recovery is
// impossible — the paper's core differentiated-persistence story.
func TestPartialRecoveryUnderFailures(t *testing.T) {
	l := mustLevels(t, 4, 8, 28) // N = 40
	tr := sensorTransport(t, 17, 150)
	rng := rand.New(rand.NewSource(18))
	d, err := NewDeployment(Config{
		Scheme: core.PLC, Levels: l,
		// Favor the most important level heavily.
		Dist: core.PriorityDistribution{0.5, 0.25, 0.25},
		M:    120, Seed: 19, PayloadLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	sources := make([][]byte, l.Total())
	for i := range sources {
		sources[i] = make([]byte, 4)
		rng.Read(sources[i])
		if err := d.Disseminate(rng, tr, rng.Intn(150), i, sources[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Kill 60% of the nodes.
	dead := make(map[int]bool)
	for i := 0; i < 150; i++ {
		if rng.Float64() < 0.6 {
			dead[i] = true
		}
	}
	blocks := d.CodedBlocks(func(node int) bool { return !dead[node] })
	res, dec, err := collect.Run(rng, core.PLC, l, blocks, collect.Options{PayloadLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Fatalf("level 0 lost despite priority protection (%d caches survived)", len(blocks))
	}
	for i := 0; i < l.Size(0); i++ {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("critical source %d corrupted", i)
		}
	}
}

func TestTransportConstructorsReject(t *testing.T) {
	if _, err := NewGeoTransport(nil, 5); err == nil {
		t.Error("nil router accepted")
	}
	if _, err := NewDHTTransport(nil); err == nil {
		t.Error("nil ring accepted")
	}
}

func TestDisseminateValidation(t *testing.T) {
	l := mustLevels(t, 1, 1)
	tr := sensorTransport(t, 20, 60)
	d, err := NewDeployment(Config{
		Scheme: core.SLC, Levels: l, Dist: core.NewUniformDistribution(2),
		M: 4, Seed: 21, PayloadLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	if err := d.Disseminate(rng, tr, 0, 5, []byte{1, 2}); err == nil {
		t.Error("out-of-range block index accepted")
	}
	if err := d.Disseminate(rng, tr, 0, 0, []byte{1}); err == nil {
		t.Error("short payload accepted")
	}
}

// TestCodedBlocksStaySparse is the no-dense-round-trip regression test
// for the encode path: every block a deployment emits must carry its
// coefficients in the sparse representation (canonical form), never a
// densified vector — and must survive the wire without densifying.
func TestCodedBlocksStaySparse(t *testing.T) {
	l := mustLevels(t, 8, 8, 8)
	tr := sensorTransport(t, 31, 80)
	cfg := Config{
		Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3),
		M: 60, Seed: 32, Fanout: 4, PayloadLen: 6,
	}
	rng := rand.New(rand.NewSource(33))
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveOwners(tr); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, cfg.PayloadLen)
	for i := 0; i < l.Total(); i++ {
		rng.Read(payload)
		if err := d.Disseminate(rng, tr, rng.Intn(tr.NumNodes()), i, payload); err != nil {
			t.Fatal(err)
		}
	}
	blocks := d.CodedBlocks(nil)
	if len(blocks) == 0 {
		t.Fatal("no coded blocks emitted")
	}
	for i, b := range blocks {
		if !b.IsSparse() || b.Coeff != nil {
			t.Fatalf("block %d emitted dense — the encode path densified", i)
		}
		if err := b.SpCoeff.Validate(); err != nil {
			t.Fatalf("block %d not canonical: %v", i, err)
		}
		// With fanout 4 over 24 source blocks, a slot's support stays far
		// below dense.
		if b.SpCoeff.NNZ() >= l.Total() {
			t.Fatalf("block %d has %d nonzeros — not sparse", i, b.SpCoeff.NNZ())
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back core.CodedBlock
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !back.IsSparse() {
			t.Fatalf("block %d densified crossing the wire", i)
		}
	}
}
