// Package predist implements the Sec. 4 pre-distribution protocol and
// distributed encoding algorithm. All nodes share a common random seed
// from which they derive the same M cache locations in the geometric
// space. Each cache location stores exactly one coded block. The M
// locations are divided into n parts sized by the priority distribution
// (part i holds the level-i coded blocks); a source block of level i is
// routed only to the locations that must encode it — part i under SLC,
// parts i..n under PLC (Fig. 3) — and the node in charge of each location
// folds it into the location's coded block with c ← c + βx for a fresh
// random coefficient β.
//
// Options reproduce the paper's two protocol refinements: a per-source
// fanout of O(ln N) random locations instead of the full destination
// subset (the Dimakis et al. sparse-code result that makes dissemination
// bandwidth-efficient), and "power of two choices" placement that keeps
// the maximum per-node cache load at Θ(ln ln M) (Byers et al.).
package predist

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gf256"
)

// Transport abstracts the routing substrate (GPSR over a sensor field,
// Chord over a P2P ring): it can resolve the node in charge of a point
// and route to it from an origin node, reporting the hop count.
type Transport interface {
	// NumNodes returns the node population size.
	NumNodes() int
	// Home returns the node currently in charge of point p.
	Home(p geom.Point) (int, error)
	// Route delivers a message from origin to the home node of p,
	// returning that node and the number of hops traversed.
	Route(origin int, p geom.Point) (node, hops int, err error)
}

// Config parameterizes a deployment.
type Config struct {
	Scheme core.Scheme
	Levels *core.Levels
	// Dist is the priority distribution sizing the location parts.
	Dist core.PriorityDistribution
	// M is the number of cache locations (coded blocks) in the network;
	// it must not exceed total network storage (W·d in the paper).
	M int
	// Seed is the common random seed every node uses to derive the
	// locations.
	Seed int64
	// Fanout, when positive, routes each source block to only this many
	// randomly chosen locations of its destination subset instead of all
	// of them — the O(ln N) dissemination of Sec. 4.
	Fanout int
	// TwoChoices enables power-of-two-choices placement: each location
	// slot derives two candidate points and is assigned to the less
	// loaded of their two home nodes.
	TwoChoices bool
	// PayloadLen is the source-block payload size in bytes (0 allowed for
	// coefficient-only experiments).
	PayloadLen int
}

func (c Config) validate() error {
	if c.Levels == nil {
		return fmt.Errorf("predist: nil levels")
	}
	if !c.Scheme.Valid() {
		return fmt.Errorf("predist: invalid scheme %v", c.Scheme)
	}
	if err := c.Dist.Validate(c.Levels); err != nil {
		return err
	}
	if c.M <= 0 {
		return fmt.Errorf("predist: M = %d cache locations, want > 0", c.M)
	}
	if c.Fanout < 0 {
		return fmt.Errorf("predist: negative fanout %d", c.Fanout)
	}
	if c.PayloadLen < 0 {
		return fmt.Errorf("predist: negative payload length %d", c.PayloadLen)
	}
	return nil
}

// Stats accumulates the protocol's bandwidth cost.
type Stats struct {
	// Messages is the number of source-block deliveries routed.
	Messages int
	// Hops is the total hop count across all deliveries.
	Hops int
	// Misroutes counts deliveries that reached a node other than the
	// location's resolved owner (possible only if the topology changed
	// mid-dissemination).
	Misroutes int
}

// Deployment is the network-wide state of one pre-distribution run.
type Deployment struct {
	cfg       Config
	locations []geom.Point // chosen point per location slot
	altPoints []geom.Point // second candidate per slot (TwoChoices)
	partOf    []int         // level part of each location slot
	owner     []int         // resolved owner node per slot; -1 before resolution
	coeff     []map[int]byte // accumulated coding coefficients per slot, sparse
	payload   [][]byte      // accumulated coded payload per slot
	stats     Stats
	resolved  bool
}

// NewDeployment derives the seeded locations and their level parts.
func NewDeployment(cfg Config) (*Deployment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Levels.Count()
	d := &Deployment{
		cfg:     cfg,
		partOf:  make([]int, cfg.M),
		owner:   make([]int, cfg.M),
		coeff:   make([]map[int]byte, cfg.M),
		payload: make([][]byte, cfg.M),
	}
	pts := geom.SeededLocations(cfg.Seed, 2*cfg.M)
	d.locations = pts[:cfg.M]
	d.altPoints = pts[cfg.M:]
	for i := range d.owner {
		d.owner[i] = -1
		// Sparse accumulation: with the O(ln N) fanout a slot sees only a
		// handful of source blocks, so per-slot state is O(nnz) instead of
		// the dense O(N) vector this used to allocate (M·N bytes network
		// wide — the memory the sparse representation exists to avoid).
		d.coeff[i] = make(map[int]byte)
		d.payload[i] = make([]byte, cfg.PayloadLen)
	}
	// Largest-remainder apportionment of the M slots over the n parts so
	// part sizes match M·p_i as closely as integers allow.
	sizes := apportion(cfg.M, cfg.Dist)
	part := 0
	used := 0
	for i := 0; i < cfg.M; i++ {
		for part < n-1 && used >= sizes[part] {
			part++
			used = 0
		}
		d.partOf[i] = part
		used++
	}
	return d, nil
}

// apportion splits m slots over the distribution by largest remainder.
func apportion(m int, p []float64) []int {
	n := len(p)
	sizes := make([]int, n)
	rem := make([]float64, n)
	total := 0
	for i, pi := range p {
		exact := pi * float64(m)
		sizes[i] = int(exact)
		rem[i] = exact - float64(sizes[i])
		total += sizes[i]
	}
	for total < m {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		sizes[best]++
		rem[best] = -1
		total++
	}
	return sizes
}

// M returns the number of cache locations.
func (d *Deployment) M() int { return d.cfg.M }

// Location returns the point of slot i (the chosen candidate after
// two-choices resolution).
func (d *Deployment) Location(i int) geom.Point { return d.locations[i] }

// PartOf returns the level part of slot i.
func (d *Deployment) PartOf(i int) int { return d.partOf[i] }

// PartSizes returns the number of slots in each level part.
func (d *Deployment) PartSizes() []int {
	sizes := make([]int, d.cfg.Levels.Count())
	for _, p := range d.partOf {
		sizes[p]++
	}
	return sizes
}

// Owner returns the node resolved to hold slot i, or -1 before
// ResolveOwners.
func (d *Deployment) Owner(i int) int { return d.owner[i] }

// Stats returns the accumulated dissemination cost.
func (d *Deployment) Stats() Stats { return d.stats }

// ResolveOwners assigns every location slot to its home node. With
// TwoChoices each slot compares the loads of its two candidate homes and
// picks the lighter one, processing slots in seed order so every node
// reaches the same assignment independently.
func (d *Deployment) ResolveOwners(tr Transport) error {
	load := make(map[int]int, tr.NumNodes())
	for i := range d.locations {
		home, err := tr.Home(d.locations[i])
		if err != nil {
			return fmt.Errorf("predist: resolve slot %d: %w", i, err)
		}
		if d.cfg.TwoChoices {
			alt, err := tr.Home(d.altPoints[i])
			if err != nil {
				return fmt.Errorf("predist: resolve slot %d alternate: %w", i, err)
			}
			if load[alt] < load[home] {
				home = alt
				d.locations[i] = d.altPoints[i] // future routing targets the alternate
			}
		}
		d.owner[i] = home
		load[home]++
	}
	d.resolved = true
	return nil
}

// MaxLoad returns the maximum number of slots any single node owns.
func (d *Deployment) MaxLoad() int {
	load := make(map[int]int)
	max := 0
	for _, o := range d.owner {
		if o < 0 {
			continue
		}
		load[o]++
		if load[o] > max {
			max = load[o]
		}
	}
	return max
}

// destinationSlots returns the slot indices a source block of the given
// level must reach: part `level` under SLC, parts level..n-1 under PLC,
// and every part under RLC.
func (d *Deployment) destinationSlots(level int) []int {
	var out []int
	for i, p := range d.partOf {
		switch d.cfg.Scheme {
		case core.SLC:
			if p == level {
				out = append(out, i)
			}
		case core.PLC:
			if p >= level {
				out = append(out, i)
			}
		default: // RLC
			out = append(out, i)
		}
	}
	return out
}

// Disseminate routes source block blockIdx (with the given payload) from
// its origin node to its destination slots, folding it into each slot's
// coded block with a fresh random coefficient. The rng drives both the
// sparse fanout selection and the coding coefficients.
func (d *Deployment) Disseminate(rng *rand.Rand, tr Transport, origin, blockIdx int, payload []byte) error {
	if !d.resolved {
		return fmt.Errorf("predist: ResolveOwners must run before dissemination")
	}
	if len(payload) != d.cfg.PayloadLen {
		return fmt.Errorf("predist: payload length %d, want %d", len(payload), d.cfg.PayloadLen)
	}
	level, err := d.cfg.Levels.LevelOf(blockIdx)
	if err != nil {
		return err
	}
	targets := d.destinationSlots(level)
	if d.cfg.Fanout > 0 && d.cfg.Fanout < len(targets) {
		picked := make([]int, 0, d.cfg.Fanout)
		for _, idx := range rng.Perm(len(targets))[:d.cfg.Fanout] {
			picked = append(picked, targets[idx])
		}
		targets = picked
	}
	for _, slot := range targets {
		node, hops, err := tr.Route(origin, d.locations[slot])
		if err != nil {
			return fmt.Errorf("predist: deliver block %d to slot %d: %w", blockIdx, slot, err)
		}
		d.stats.Messages++
		d.stats.Hops += hops
		if node != d.owner[slot] {
			d.stats.Misroutes++
			d.owner[slot] = node // the block physically lands here now
		}
		beta := byte(1 + rng.Intn(255))
		// c ← c + βx, coefficient side; a fold back to zero deletes the
		// entry so the map stays exactly the nonzero support.
		if v := d.coeff[slot][blockIdx] ^ beta; v == 0 {
			delete(d.coeff[slot], blockIdx)
		} else {
			d.coeff[slot][blockIdx] = v
		}
		if d.cfg.PayloadLen > 0 {
			gf256.AddMulSlice(d.payload[slot], payload, beta)
		}
	}
	return nil
}

// CodedBlocks returns the coded block of every slot whose owner passes the
// alive filter (nil = all) and which received at least one source block.
// The slot's level part becomes the block's level. Blocks are emitted in
// the sparse representation directly — the O(ln N) dissemination vectors
// never take a dense round-trip on their way to the wire or the decoder.
func (d *Deployment) CodedBlocks(alive func(node int) bool) []*core.CodedBlock {
	out := make([]*core.CodedBlock, 0, d.cfg.M)
	for i := range d.locations {
		if d.owner[i] < 0 {
			continue
		}
		if alive != nil && !alive(d.owner[i]) {
			continue
		}
		if len(d.coeff[i]) == 0 {
			continue
		}
		out = append(out, &core.CodedBlock{
			Level:   d.partOf[i],
			SpCoeff: sparseFromMap(d.cfg.Levels.Total(), d.coeff[i]),
			Payload: append([]byte(nil), d.payload[i]...),
		})
	}
	return out
}

// sparseFromMap converts a sparse accumulation map into canonical form.
func sparseFromMap(total int, m map[int]byte) *core.SparseCoeff {
	pos := make([]int, 0, len(m))
	for j := range m {
		pos = append(pos, j)
	}
	sort.Ints(pos)
	s := &core.SparseCoeff{
		Len: total,
		Idx: make([]uint32, len(pos)),
		Val: make([]byte, len(pos)),
	}
	for i, j := range pos {
		s.Idx[i] = uint32(j)
		s.Val[i] = m[j]
	}
	return s
}
