package predist

import (
	"fmt"
	"math/rand"

	"repro/internal/gf256"
)

// Repair restores the redundancy destroyed by node failures — the
// regeneration step the distributed-storage line of related work (Dimakis
// et al., "Network Coding for Distributed Storage Systems") adds on top
// of one-shot pre-distribution. After a collector has recovered the
// source blocks, every cache slot whose owner died is re-homed onto the
// closest surviving node and refilled with a freshly coded block over the
// slot's full support, delivered from the given origin node. Surviving
// slots are left untouched.
//
// It returns the number of slots repaired. The alive predicate must
// reflect the same liveness the Transport routes around.
func (d *Deployment) Repair(rng *rand.Rand, tr Transport, origin int, sources [][]byte, alive func(int) bool) (int, error) {
	if !d.resolved {
		return 0, fmt.Errorf("predist: ResolveOwners must run before Repair")
	}
	if alive == nil {
		return 0, fmt.Errorf("predist: nil alive predicate")
	}
	if len(sources) != d.cfg.Levels.Total() {
		return 0, fmt.Errorf("predist: %d source payloads, want %d", len(sources), d.cfg.Levels.Total())
	}
	for i, s := range sources {
		if len(s) != d.cfg.PayloadLen {
			return 0, fmt.Errorf("predist: source %d has %d bytes, want %d", i, len(s), d.cfg.PayloadLen)
		}
	}
	repaired := 0
	for slot := range d.locations {
		if d.owner[slot] >= 0 && alive(d.owner[slot]) {
			continue // the cache survived in place
		}
		lo, hi, err := d.cfg.Scheme.Support(d.cfg.Levels, d.partOf[slot])
		if err != nil {
			return repaired, err
		}
		coeff := make(map[int]byte, hi-lo)
		payload := make([]byte, d.cfg.PayloadLen)
		for j := lo; j < hi; j++ {
			beta := byte(1 + rng.Intn(255))
			coeff[j] = beta
			if d.cfg.PayloadLen > 0 {
				gf256.AddMulSlice(payload, sources[j], beta)
			}
		}
		node, hops, err := tr.Route(origin, d.locations[slot])
		if err != nil {
			return repaired, fmt.Errorf("predist: repair slot %d: %w", slot, err)
		}
		d.owner[slot] = node
		d.coeff[slot] = coeff
		d.payload[slot] = payload
		d.stats.Messages++
		d.stats.Hops += hops
		repaired++
	}
	return repaired, nil
}
