package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDecoderValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	if _, err := NewDecoder(Scheme(0), l, 0); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := NewDecoder(PLC, nil, 0); err == nil {
		t.Error("nil levels accepted")
	}
	if _, err := NewDecoder(PLC, l, -1); err == nil {
		t.Error("negative payload length accepted")
	}
}

func TestAddValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	d, err := NewDecoder(SLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(nil); err == nil {
		t.Error("nil block accepted")
	}
	if _, err := d.Add(&CodedBlock{Level: 0, Coeff: []byte{1}, Payload: []byte{}}); err == nil {
		t.Error("short coefficient vector accepted")
	}
	// Nonzero coefficient outside the SLC level-0 support [0, 2).
	bad := &CodedBlock{Level: 0, Coeff: []byte{1, 1, 1, 0}, Payload: []byte{}}
	if _, err := d.Add(bad); err == nil {
		t.Error("block violating its support accepted")
	}
	if _, err := d.Add(&CodedBlock{Level: 5, Coeff: make([]byte, 4), Payload: []byte{}}); err == nil {
		t.Error("out-of-range level accepted")
	}
	if d.Received() != 0 {
		t.Errorf("rejected blocks counted as received: %d", d.Received())
	}
}

// roundTrip encodes and decodes under a scheme until complete, checking
// payload fidelity; returns the number of blocks consumed.
func roundTrip(t *testing.T, scheme Scheme, l *Levels, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sources := randomSources(rng, l.Total(), 8)
	e, err := NewEncoder(scheme, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(scheme, l, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := NewUniformDistribution(l.Count())
	used := 0
	for !d.Complete() {
		blocks, err := e.EncodeBatch(rng, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
		used++
		if used > 100*l.Total() {
			t.Fatalf("%v: no completion after %d blocks", scheme, used)
		}
	}
	for i := range sources {
		got, err := d.Source(i)
		if err != nil {
			t.Fatalf("%v: source %d: %v", scheme, i, err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("%v: source %d decoded incorrectly", scheme, i)
		}
	}
	return used
}

func TestRoundTripAllSchemes(t *testing.T) {
	l := mustLevels(t, 4, 6, 10)
	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		used := roundTrip(t, scheme, l, int64(scheme))
		if used < l.Total() {
			t.Errorf("%v completed with %d < N blocks", scheme, used)
		}
	}
}

// TestRLCAllOrNothing verifies the motivating observation: with fewer than
// N coded blocks, RLC decodes nothing.
func TestRLCAllOrNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	l := mustLevels(t, 10, 10)
	e, err := NewEncoder(RLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(RLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Total()-1; i++ {
		b, err := e.Encode(rng, rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(b); err != nil {
			t.Fatal(err)
		}
		// At M = N-1 a single source block can leak with probability
		// ~(N-1)/256 (one RREF row's lone non-pivot entry hits zero), so the
		// hard zero check applies only through N-2 blocks.
		if got := d.DecodedBlocks(); got != 0 && i+1 <= l.Total()-2 {
			t.Fatalf("RLC decoded %d blocks from %d < N-1 coded blocks", got, i+1)
		}
		if got := d.DecodedLevels(); got != 0 {
			t.Fatalf("RLC decoded %d levels early", got)
		}
	}
}

// TestFig1PartialRecovery reproduces the Fig. 1 claim: with levels (1, 2),
// a single level-0 coded block decodes source block 1 under both SLC and
// PLC, while RLC needs all three.
func TestFig1PartialRecovery(t *testing.T) {
	l := mustLevels(t, 1, 2)
	for _, scheme := range []Scheme{SLC, PLC} {
		rng := rand.New(rand.NewSource(31))
		sources := randomSources(rng, 3, 4)
		e, err := NewEncoder(scheme, l, sources)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(scheme, l, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Encode(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(b); err != nil {
			t.Fatal(err)
		}
		if got := d.DecodedLevels(); got != 1 {
			t.Errorf("%v: DecodedLevels = %d after one level-0 block, want 1", scheme, got)
		}
		got, err := d.Source(0)
		if err != nil {
			t.Errorf("%v: %v", scheme, err)
			continue
		}
		if !bytes.Equal(got, sources[0]) {
			t.Errorf("%v: source 0 decoded incorrectly", scheme)
		}
	}
}

// TestSLCLevelsIndependent verifies that SLC can decode a lower-priority
// level even when higher-priority levels are missing — and that the
// strict-priority DecodedLevels metric still reports 0.
func TestSLCLevelsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	l := mustLevels(t, 3, 3)
	sources := randomSources(rng, 6, 4)
	e, err := NewEncoder(SLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(SLC, l, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Feed only level-1 blocks.
	for !d.LevelDecoded(1) {
		b, err := e.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if d.LevelDecoded(0) {
		t.Error("level 0 claims decoded with no blocks")
	}
	if got := d.DecodedLevels(); got != 0 {
		t.Errorf("strict-priority DecodedLevels = %d, want 0", got)
	}
	if got := d.DecodedBlocks(); got != 3 {
		t.Errorf("DecodedBlocks = %d, want 3", got)
	}
	// Blocks of level 1 must be retrievable despite the gap.
	for i := 3; i < 6; i++ {
		got, err := d.Source(i)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Errorf("source %d decoded incorrectly", i)
		}
	}
	if _, err := d.Source(0); err == nil {
		t.Error("undecoded source 0 returned a payload")
	}
}

// TestPLCProgressiveOrder verifies that PLC decodes levels strictly in
// priority order under a stream of mixed-level blocks.
func TestPLCProgressiveOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := mustLevels(t, 5, 5, 5)
	e, err := NewEncoder(PLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(PLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewUniformDistribution(3)
	prev := 0
	for !d.Complete() {
		blocks, err := e.EncodeBatch(rng, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
		cur := d.DecodedLevels()
		if cur < prev {
			t.Fatalf("DecodedLevels went backwards: %d -> %d", prev, cur)
		}
		// Under PLC, LevelDecoded must be a prefix property.
		for k := 0; k < 3; k++ {
			if d.LevelDecoded(k) != (k < cur) {
				t.Fatalf("LevelDecoded(%d) = %v inconsistent with DecodedLevels %d",
					k, d.LevelDecoded(k), cur)
			}
		}
		prev = cur
	}
}

func TestDecoderSourceRangeChecks(t *testing.T) {
	l := mustLevels(t, 2)
	d, err := NewDecoder(PLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Source(-1); err == nil {
		t.Error("Source(-1) succeeded, want error")
	}
	if _, err := d.Source(2); err == nil {
		t.Error("Source(out of range) succeeded, want error")
	}
}

func TestSourcesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	l := mustLevels(t, 1, 1)
	sources := randomSources(rng, 2, 2)
	e, err := NewEncoder(PLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(PLC, l, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(b); err != nil {
		t.Fatal(err)
	}
	got := d.Sources()
	if got[1] != nil {
		t.Error("undecoded source has non-nil snapshot")
	}
	if !bytes.Equal(got[0], sources[0]) {
		t.Error("decoded source snapshot wrong")
	}
}

func TestLevelDecodedOutOfRange(t *testing.T) {
	l := mustLevels(t, 2)
	d, err := NewDecoder(SLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.LevelDecoded(-1) || d.LevelDecoded(1) {
		t.Error("out-of-range levels reported decoded")
	}
}

func TestReceivedCountsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	l := mustLevels(t, 2)
	e, err := NewEncoder(RLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(RLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(b); err != nil {
		t.Fatal(err)
	}
	innovative, err := d.Add(b) // exact duplicate
	if err != nil {
		t.Fatal(err)
	}
	if innovative {
		t.Error("duplicate block reported innovative")
	}
	if d.Received() != 2 || d.Rank() != 1 {
		t.Errorf("Received = %d, Rank = %d; want 2, 1", d.Received(), d.Rank())
	}
}

// TestQuickRoundTripRandomStructures fuzzes level structures and schemes,
// checking full decode fidelity end to end.
func TestQuickRoundTripRandomStructures(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(6)
		}
		l, err := NewLevels(sizes...)
		if err != nil {
			return false
		}
		scheme := []Scheme{RLC, SLC, PLC}[rng.Intn(3)]
		sources := randomSources(rng, l.Total(), 4)
		e, err := NewEncoder(scheme, l, sources)
		if err != nil {
			return false
		}
		d, err := NewDecoder(scheme, l, 4)
		if err != nil {
			return false
		}
		p := NewUniformDistribution(n)
		for tries := 0; !d.Complete() && tries < 200*l.Total(); tries++ {
			blocks, err := e.EncodeBatch(rng, p, 1)
			if err != nil {
				return false
			}
			if _, err := d.Add(blocks[0]); err != nil {
				return false
			}
		}
		if !d.Complete() {
			return false
		}
		for i := range sources {
			got, err := d.Source(i)
			if err != nil || !bytes.Equal(got, sources[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestSparseDecodesWithLogCoefficients checks the Dimakis-based Sec. 4
// efficiency claim at small scale: sparse PLC with 3·ln(N) nonzero
// coefficients still reaches full decode with modest overhead.
func TestSparseDecodesWithLogCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	l, err := UniformLevels(5, 20) // N = 100
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEncoder(PLC, l, nil, WithSparsity(LogSparsity(l.Total())))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(PLC, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewUniformDistribution(5)
	used := 0
	for !d.Complete() && used < 5*l.Total() {
		blocks, err := e.EncodeBatch(rng, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
		used++
	}
	if !d.Complete() {
		t.Fatalf("sparse PLC did not complete within %d blocks", used)
	}
}
