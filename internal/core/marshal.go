package core

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrWireFormat is wrapped by every UnmarshalBinary failure, so callers
// sorting good blocks from corrupt ones branch with errors.Is instead of
// string matching.
var ErrWireFormat = errors.New("core: malformed wire block")

// Wire format for coded blocks, so deployments can ship them over
// sockets or store them on disk:
//
//	magic   "PB"         2 bytes
//	version 1 | 2 | 3 | 4  1 byte
//	object  uint64       big endian  (versions 2 and 4 only)
//	level   uint16       big endian
//	nCoeff  uint32       big endian  (dense coefficient length)
//	nPay    uint32       big endian
//	coeff   version-dependent, see below
//	payload nPay bytes
//
// Versions 2 and 4 are the object-keyed forms of 1 and 3: they insert
// the 8-byte ObjectID immediately after the version byte and are
// otherwise identical. A block with the zero (legacy) object always
// marshals as v1/v3, bit-identical to prior releases, and key-less
// v1/v3 frames decode as the zero object — so old and new daemons
// interoperate on the single-object workload, and dedup by marshaled
// bytes keeps working across the version bump. A v2/v4 frame carrying
// the zero object is rejected as non-canonical for the same reason.
//
// Versions 1 and 2 carry the coefficients dense: nCoeff raw bytes.
// Versions 3 and 4 carry them sparse, shipping only the nonzero
// structure:
//
//	mode    1 byte
//	mode 0 (index/value pairs):
//	  nnz   uint32 big endian
//	  idx   nnz × uint32 big endian, strictly increasing, < nCoeff
//	  val   nnz bytes, all nonzero
//	mode 1 (contiguous span):
//	  start uint32 big endian
//	  width uint32 big endian   (start+width ≤ nCoeff, width ≥ 1)
//	  raw   width bytes, first and last nonzero
//
// The encoding is canonical: a sparse block marshals in whichever mode
// costs fewer bytes (pairs: 4+5·nnz, span: 8+width; ties go to pairs),
// and UnmarshalBinary rejects non-canonical v3 frames — wrong mode for
// the structure, zero pair values, or span padding at the edges — so
// every accepted frame re-marshals bit-identically. Dense blocks always
// use version 1, unchanged from prior releases; which representation a
// block uses survives a marshal round-trip.
const (
	wireMagic        = "PB"
	wireVersion      = 1
	wireVersionKey   = 2
	wireVersionSpars = 3
	wireVersionSpKey = 4
	wireHeader       = 2 + 1 + 2 + 4 + 4
	// wireKeyedHeader is wireHeader plus the 8-byte object ID that v2/v4
	// frames insert after the version byte.
	wireKeyedHeader = wireHeader + 8

	wireModePairs = 0
	wireModeSpan  = 1

	// maxSparseCoeffLen bounds the dense length a v3 frame may claim.
	// Unlike v1, where nCoeff is implicitly bounded by the bytes actually
	// present, a sparse frame declares a dense length it never ships — a
	// hostile frame could claim 4 GiB and blow up the first densification.
	maxSparseCoeffLen = 1 << 24
)

var (
	_ encoding.BinaryMarshaler   = (*CodedBlock)(nil)
	_ encoding.BinaryUnmarshaler = (*CodedBlock)(nil)
)

// sparseWireCost returns the v3 coefficient-section size (mode byte
// included) of a canonical sparse vector, choosing the cheaper mode.
func sparseWireCost(s *SparseCoeff) int {
	pairs := 1 + 4 + 5*s.NNZ()
	if s.NNZ() == 0 {
		return pairs
	}
	lo, hi := s.Support()
	span := 1 + 8 + (hi - lo)
	if span < pairs {
		return span
	}
	return pairs
}

// wireHeaderSize returns the header length the block marshals with:
// keyed frames carry the 8-byte object ID, legacy zero-object frames
// do not.
func (b *CodedBlock) wireHeaderSize() int {
	if b.Object != ZeroObject {
		return wireKeyedHeader
	}
	return wireHeader
}

// WireSize returns the exact MarshalBinary output size in bytes.
func (b *CodedBlock) WireSize() int {
	if b.SpCoeff != nil {
		return b.wireHeaderSize() + sparseWireCost(b.SpCoeff) + len(b.Payload)
	}
	return b.wireHeaderSize() + len(b.Coeff) + len(b.Payload)
}

// MarshalBinary encodes the block in the wire format: version 1/3 for
// zero-object blocks (bit-identical to prior releases), version 2/4 —
// same layout plus the 8-byte object ID — for keyed ones.
func (b *CodedBlock) MarshalBinary() ([]byte, error) {
	if b.Level < 0 || b.Level > 0xFFFF {
		return nil, fmt.Errorf("core: level %d does not fit the wire format", b.Level)
	}
	if b.Object == AllObjects {
		return nil, fmt.Errorf("core: block carries the reserved all-objects wildcard %s", b.Object)
	}
	s := b.SpCoeff
	if s == nil {
		out := make([]byte, 0, b.wireHeaderSize()+len(b.Coeff)+len(b.Payload))
		out = append(out, wireMagic...)
		if b.Object != ZeroObject {
			out = append(out, wireVersionKey)
			out = binary.BigEndian.AppendUint64(out, uint64(b.Object))
		} else {
			out = append(out, wireVersion)
		}
		out = binary.BigEndian.AppendUint16(out, uint16(b.Level))
		out = binary.BigEndian.AppendUint32(out, uint32(len(b.Coeff)))
		out = binary.BigEndian.AppendUint32(out, uint32(len(b.Payload)))
		out = append(out, b.Coeff...)
		out = append(out, b.Payload...)
		return out, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len > maxSparseCoeffLen {
		return nil, fmt.Errorf("core: sparse coefficient length %d exceeds wire maximum %d", s.Len, maxSparseCoeffLen)
	}
	out := make([]byte, 0, b.wireHeaderSize()+sparseWireCost(s)+len(b.Payload))
	out = append(out, wireMagic...)
	if b.Object != ZeroObject {
		out = append(out, wireVersionSpKey)
		out = binary.BigEndian.AppendUint64(out, uint64(b.Object))
	} else {
		out = append(out, wireVersionSpars)
	}
	out = binary.BigEndian.AppendUint16(out, uint16(b.Level))
	out = binary.BigEndian.AppendUint32(out, uint32(s.Len))
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Payload)))
	lo, hi := s.Support()
	if s.NNZ() > 0 && 1+8+(hi-lo) < 1+4+5*s.NNZ() {
		out = append(out, wireModeSpan)
		out = binary.BigEndian.AppendUint32(out, uint32(lo))
		out = binary.BigEndian.AppendUint32(out, uint32(hi-lo))
		raw := make([]byte, hi-lo)
		for i, j := range s.Idx {
			raw[int(j)-lo] = s.Val[i]
		}
		out = append(out, raw...)
	} else {
		out = append(out, wireModePairs)
		out = binary.BigEndian.AppendUint32(out, uint32(s.NNZ()))
		for _, j := range s.Idx {
			out = binary.BigEndian.AppendUint32(out, j)
		}
		out = append(out, s.Val...)
	}
	out = append(out, b.Payload...)
	return out, nil
}

// UnmarshalBinary decodes a block from the wire format, copying the
// input. Version 1/2 frames yield dense blocks, version 3/4 frames
// sparse ones; the keyed versions (2/4) carry the ObjectID, the legacy
// ones decode as the zero object. Hostile frames — inflated index
// counts, out-of-range or duplicate indices, non-canonical encodings
// (including a keyed frame carrying a reserved object) — are rejected
// with ErrWireFormat before any structure-sized allocation happens.
func (b *CodedBlock) UnmarshalBinary(data []byte) error {
	if len(data) < wireHeader {
		return fmt.Errorf("%w: truncated at %d bytes", ErrWireFormat, len(data))
	}
	if string(data[:2]) != wireMagic {
		return fmt.Errorf("%w: bad magic %q", ErrWireFormat, data[:2])
	}
	version := data[2]
	obj := ZeroObject
	hdr := wireHeader
	fixed := data[3:]
	switch version {
	case wireVersionKey, wireVersionSpKey:
		if len(data) < wireKeyedHeader {
			return fmt.Errorf("%w: keyed frame truncated at %d bytes", ErrWireFormat, len(data))
		}
		obj = ObjectID(binary.BigEndian.Uint64(fixed))
		if obj == ZeroObject {
			return fmt.Errorf("%w: keyed frame carries the zero object (must use version %d/%d)",
				ErrWireFormat, wireVersion, wireVersionSpars)
		}
		if obj == AllObjects {
			return fmt.Errorf("%w: keyed frame carries the reserved all-objects wildcard", ErrWireFormat)
		}
		hdr = wireKeyedHeader
		fixed = fixed[8:]
	case wireVersion, wireVersionSpars:
	default:
		return fmt.Errorf("%w: unsupported version %d", ErrWireFormat, version)
	}
	level := int(binary.BigEndian.Uint16(fixed))
	nCoeff := int(binary.BigEndian.Uint32(fixed[2:]))
	nPay := int(binary.BigEndian.Uint32(fixed[6:]))
	if nCoeff < 0 || nPay < 0 {
		return fmt.Errorf("%w: negative section size", ErrWireFormat)
	}
	switch version {
	case wireVersion, wireVersionKey:
		if len(data) != hdr+nCoeff+nPay {
			return fmt.Errorf("%w: length %d does not match header (%d coeff, %d payload)",
				ErrWireFormat, len(data), nCoeff, nPay)
		}
		b.Object = obj
		b.Level = level
		b.Coeff = append([]byte(nil), data[hdr:hdr+nCoeff]...)
		b.SpCoeff = nil
		b.Payload = append([]byte(nil), data[hdr+nCoeff:]...)
		return nil
	default: // wireVersionSpars, wireVersionSpKey
		if nCoeff > maxSparseCoeffLen {
			return fmt.Errorf("%w: sparse coefficient length %d exceeds maximum %d",
				ErrWireFormat, nCoeff, maxSparseCoeffLen)
		}
		body := data[hdr:]
		if len(body) < 1+nPay {
			return fmt.Errorf("%w: truncated sparse coefficient section", ErrWireFormat)
		}
		mode := body[0]
		sect := body[1 : len(body)-nPay]
		s, err := unmarshalSparseCoeff(mode, sect, nCoeff)
		if err != nil {
			return err
		}
		b.Object = obj
		b.Level = level
		b.Coeff = nil
		b.SpCoeff = s
		b.Payload = append([]byte(nil), body[len(body)-nPay:]...)
		return nil
	}
}

// unmarshalSparseCoeff parses and validates one v3 coefficient section.
// sect is exactly the section body (mode byte and payload stripped).
func unmarshalSparseCoeff(mode byte, sect []byte, nCoeff int) (*SparseCoeff, error) {
	switch mode {
	case wireModePairs:
		if len(sect) < 4 {
			return nil, fmt.Errorf("%w: pairs section truncated at %d bytes", ErrWireFormat, len(sect))
		}
		nnz := int(binary.BigEndian.Uint32(sect))
		// Clamp the claimed count by the bytes actually present before any
		// allocation — the decodeBlockList pattern one layer up.
		if nnz < 0 || nnz > (len(sect)-4)/5 || len(sect) != 4+5*nnz {
			return nil, fmt.Errorf("%w: pairs section claims %d entries in %d bytes", ErrWireFormat, nnz, len(sect))
		}
		s := &SparseCoeff{Len: nCoeff}
		if nnz > 0 {
			s.Idx = make([]uint32, nnz)
			s.Val = append([]byte(nil), sect[4+4*nnz:]...)
			prev := -1
			for i := range s.Idx {
				j := binary.BigEndian.Uint32(sect[4+4*i:])
				if int(j) <= prev || int(j) >= nCoeff {
					return nil, fmt.Errorf("%w: sparse index %d (after %d) outside strictly increasing [0, %d)",
						ErrWireFormat, j, prev, nCoeff)
				}
				if s.Val[i] == 0 {
					return nil, fmt.Errorf("%w: zero value at sparse index %d", ErrWireFormat, j)
				}
				s.Idx[i] = j
				prev = int(j)
			}
			// Canonical-mode check: marshal would have picked span had it
			// been cheaper, so such a pairs frame cannot round-trip.
			if lo, hi := s.Support(); 8+(hi-lo) < 4+5*nnz {
				return nil, fmt.Errorf("%w: non-canonical pairs encoding (span is smaller)", ErrWireFormat)
			}
		}
		return s, nil
	case wireModeSpan:
		if len(sect) < 8 {
			return nil, fmt.Errorf("%w: span section truncated at %d bytes", ErrWireFormat, len(sect))
		}
		start := int(binary.BigEndian.Uint32(sect))
		width := int(binary.BigEndian.Uint32(sect[4:]))
		if width < 1 || len(sect) != 8+width {
			return nil, fmt.Errorf("%w: span section claims width %d in %d bytes", ErrWireFormat, width, len(sect))
		}
		if start < 0 || width > nCoeff || start > nCoeff-width {
			return nil, fmt.Errorf("%w: span [%d, %d) outside coefficient range [0, %d)",
				ErrWireFormat, start, start+width, nCoeff)
		}
		raw := sect[8:]
		if raw[0] == 0 || raw[width-1] == 0 {
			return nil, fmt.Errorf("%w: non-canonical span encoding (zero padding at edge)", ErrWireFormat)
		}
		nnz := 0
		for _, v := range raw {
			if v != 0 {
				nnz++
			}
		}
		if !(8+width < 4+5*nnz) {
			return nil, fmt.Errorf("%w: non-canonical span encoding (pairs is smaller)", ErrWireFormat)
		}
		s := &SparseCoeff{
			Len: nCoeff,
			Idx: make([]uint32, 0, nnz),
			Val: make([]byte, 0, nnz),
		}
		for off, v := range raw {
			if v != 0 {
				s.Idx = append(s.Idx, uint32(start+off))
				s.Val = append(s.Val, v)
			}
		}
		return s, nil
	default:
		return nil, fmt.Errorf("%w: unknown sparse coefficient mode %d", ErrWireFormat, mode)
	}
}
