package core

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrWireFormat is wrapped by every UnmarshalBinary failure, so callers
// sorting good blocks from corrupt ones branch with errors.Is instead of
// string matching.
var ErrWireFormat = errors.New("core: malformed wire block")

// Wire format for coded blocks, so deployments can ship them over
// sockets or store them on disk:
//
//	magic   "PB"     2 bytes
//	version 1        1 byte
//	level   uint16   big endian
//	nCoeff  uint32   big endian
//	nPay    uint32   big endian
//	coeff   nCoeff bytes
//	payload nPay bytes
const (
	wireMagic   = "PB"
	wireVersion = 1
	wireHeader  = 2 + 1 + 2 + 4 + 4
)

var (
	_ encoding.BinaryMarshaler   = (*CodedBlock)(nil)
	_ encoding.BinaryUnmarshaler = (*CodedBlock)(nil)
)

// MarshalBinary encodes the block in the wire format.
func (b *CodedBlock) MarshalBinary() ([]byte, error) {
	if b.Level < 0 || b.Level > 0xFFFF {
		return nil, fmt.Errorf("core: level %d does not fit the wire format", b.Level)
	}
	out := make([]byte, 0, wireHeader+len(b.Coeff)+len(b.Payload))
	out = append(out, wireMagic...)
	out = append(out, wireVersion)
	out = binary.BigEndian.AppendUint16(out, uint16(b.Level))
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Coeff)))
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Payload)))
	out = append(out, b.Coeff...)
	out = append(out, b.Payload...)
	return out, nil
}

// UnmarshalBinary decodes a block from the wire format, copying the
// input.
func (b *CodedBlock) UnmarshalBinary(data []byte) error {
	if len(data) < wireHeader {
		return fmt.Errorf("%w: truncated at %d bytes", ErrWireFormat, len(data))
	}
	if string(data[:2]) != wireMagic {
		return fmt.Errorf("%w: bad magic %q", ErrWireFormat, data[:2])
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrWireFormat, data[2])
	}
	level := int(binary.BigEndian.Uint16(data[3:]))
	nCoeff := int(binary.BigEndian.Uint32(data[5:]))
	nPay := int(binary.BigEndian.Uint32(data[9:]))
	if nCoeff < 0 || nPay < 0 || len(data) != wireHeader+nCoeff+nPay {
		return fmt.Errorf("%w: length %d does not match header (%d coeff, %d payload)",
			ErrWireFormat, len(data), nCoeff, nPay)
	}
	b.Level = level
	b.Coeff = append([]byte(nil), data[wireHeader:wireHeader+nCoeff]...)
	b.Payload = append([]byte(nil), data[wireHeader+nCoeff:]...)
	return nil
}
