package core

import (
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrWireFormat is wrapped by every UnmarshalBinary failure, so callers
// sorting good blocks from corrupt ones branch with errors.Is instead of
// string matching.
var ErrWireFormat = errors.New("core: malformed wire block")

// Wire format for coded blocks, so deployments can ship them over
// sockets or store them on disk:
//
//	magic   "PB"     2 bytes
//	version 1 | 3    1 byte
//	level   uint16   big endian
//	nCoeff  uint32   big endian  (dense coefficient length)
//	nPay    uint32   big endian
//	coeff   version-dependent, see below
//	payload nPay bytes
//
// Version 1 carries the coefficients dense: nCoeff raw bytes. Version 3
// carries them sparse, shipping only the nonzero structure:
//
//	mode    1 byte
//	mode 0 (index/value pairs):
//	  nnz   uint32 big endian
//	  idx   nnz × uint32 big endian, strictly increasing, < nCoeff
//	  val   nnz bytes, all nonzero
//	mode 1 (contiguous span):
//	  start uint32 big endian
//	  width uint32 big endian   (start+width ≤ nCoeff, width ≥ 1)
//	  raw   width bytes, first and last nonzero
//
// The encoding is canonical: a sparse block marshals in whichever mode
// costs fewer bytes (pairs: 4+5·nnz, span: 8+width; ties go to pairs),
// and UnmarshalBinary rejects non-canonical v3 frames — wrong mode for
// the structure, zero pair values, or span padding at the edges — so
// every accepted frame re-marshals bit-identically. Dense blocks always
// use version 1, unchanged from prior releases; which representation a
// block uses survives a marshal round-trip.
const (
	wireMagic        = "PB"
	wireVersion      = 1
	wireVersionSpars = 3
	wireHeader       = 2 + 1 + 2 + 4 + 4

	wireModePairs = 0
	wireModeSpan  = 1

	// maxSparseCoeffLen bounds the dense length a v3 frame may claim.
	// Unlike v1, where nCoeff is implicitly bounded by the bytes actually
	// present, a sparse frame declares a dense length it never ships — a
	// hostile frame could claim 4 GiB and blow up the first densification.
	maxSparseCoeffLen = 1 << 24
)

var (
	_ encoding.BinaryMarshaler   = (*CodedBlock)(nil)
	_ encoding.BinaryUnmarshaler = (*CodedBlock)(nil)
)

// sparseWireCost returns the v3 coefficient-section size (mode byte
// included) of a canonical sparse vector, choosing the cheaper mode.
func sparseWireCost(s *SparseCoeff) int {
	pairs := 1 + 4 + 5*s.NNZ()
	if s.NNZ() == 0 {
		return pairs
	}
	lo, hi := s.Support()
	span := 1 + 8 + (hi - lo)
	if span < pairs {
		return span
	}
	return pairs
}

// WireSize returns the exact MarshalBinary output size in bytes.
func (b *CodedBlock) WireSize() int {
	if b.SpCoeff != nil {
		return wireHeader + sparseWireCost(b.SpCoeff) + len(b.Payload)
	}
	return wireHeader + len(b.Coeff) + len(b.Payload)
}

// MarshalBinary encodes the block in the wire format: version 1 for dense
// blocks (bit-identical to prior releases), version 3 for sparse ones.
func (b *CodedBlock) MarshalBinary() ([]byte, error) {
	if b.Level < 0 || b.Level > 0xFFFF {
		return nil, fmt.Errorf("core: level %d does not fit the wire format", b.Level)
	}
	s := b.SpCoeff
	if s == nil {
		out := make([]byte, 0, wireHeader+len(b.Coeff)+len(b.Payload))
		out = append(out, wireMagic...)
		out = append(out, wireVersion)
		out = binary.BigEndian.AppendUint16(out, uint16(b.Level))
		out = binary.BigEndian.AppendUint32(out, uint32(len(b.Coeff)))
		out = binary.BigEndian.AppendUint32(out, uint32(len(b.Payload)))
		out = append(out, b.Coeff...)
		out = append(out, b.Payload...)
		return out, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len > maxSparseCoeffLen {
		return nil, fmt.Errorf("core: sparse coefficient length %d exceeds wire maximum %d", s.Len, maxSparseCoeffLen)
	}
	out := make([]byte, 0, wireHeader+sparseWireCost(s)+len(b.Payload))
	out = append(out, wireMagic...)
	out = append(out, wireVersionSpars)
	out = binary.BigEndian.AppendUint16(out, uint16(b.Level))
	out = binary.BigEndian.AppendUint32(out, uint32(s.Len))
	out = binary.BigEndian.AppendUint32(out, uint32(len(b.Payload)))
	lo, hi := s.Support()
	if s.NNZ() > 0 && 1+8+(hi-lo) < 1+4+5*s.NNZ() {
		out = append(out, wireModeSpan)
		out = binary.BigEndian.AppendUint32(out, uint32(lo))
		out = binary.BigEndian.AppendUint32(out, uint32(hi-lo))
		raw := make([]byte, hi-lo)
		for i, j := range s.Idx {
			raw[int(j)-lo] = s.Val[i]
		}
		out = append(out, raw...)
	} else {
		out = append(out, wireModePairs)
		out = binary.BigEndian.AppendUint32(out, uint32(s.NNZ()))
		for _, j := range s.Idx {
			out = binary.BigEndian.AppendUint32(out, j)
		}
		out = append(out, s.Val...)
	}
	out = append(out, b.Payload...)
	return out, nil
}

// UnmarshalBinary decodes a block from the wire format, copying the
// input. A version-1 frame yields a dense block, a version-3 frame a
// sparse one; hostile v3 frames — inflated index counts, out-of-range or
// duplicate indices, non-canonical encodings — are rejected with
// ErrWireFormat before any structure-sized allocation happens.
func (b *CodedBlock) UnmarshalBinary(data []byte) error {
	if len(data) < wireHeader {
		return fmt.Errorf("%w: truncated at %d bytes", ErrWireFormat, len(data))
	}
	if string(data[:2]) != wireMagic {
		return fmt.Errorf("%w: bad magic %q", ErrWireFormat, data[:2])
	}
	version := data[2]
	level := int(binary.BigEndian.Uint16(data[3:]))
	nCoeff := int(binary.BigEndian.Uint32(data[5:]))
	nPay := int(binary.BigEndian.Uint32(data[9:]))
	if nCoeff < 0 || nPay < 0 {
		return fmt.Errorf("%w: negative section size", ErrWireFormat)
	}
	switch version {
	case wireVersion:
		if len(data) != wireHeader+nCoeff+nPay {
			return fmt.Errorf("%w: length %d does not match header (%d coeff, %d payload)",
				ErrWireFormat, len(data), nCoeff, nPay)
		}
		b.Level = level
		b.Coeff = append([]byte(nil), data[wireHeader:wireHeader+nCoeff]...)
		b.SpCoeff = nil
		b.Payload = append([]byte(nil), data[wireHeader+nCoeff:]...)
		return nil
	case wireVersionSpars:
		if nCoeff > maxSparseCoeffLen {
			return fmt.Errorf("%w: sparse coefficient length %d exceeds maximum %d",
				ErrWireFormat, nCoeff, maxSparseCoeffLen)
		}
		body := data[wireHeader:]
		if len(body) < 1+nPay {
			return fmt.Errorf("%w: truncated sparse coefficient section", ErrWireFormat)
		}
		mode := body[0]
		sect := body[1 : len(body)-nPay]
		s, err := unmarshalSparseCoeff(mode, sect, nCoeff)
		if err != nil {
			return err
		}
		b.Level = level
		b.Coeff = nil
		b.SpCoeff = s
		b.Payload = append([]byte(nil), body[len(body)-nPay:]...)
		return nil
	default:
		return fmt.Errorf("%w: unsupported version %d", ErrWireFormat, version)
	}
}

// unmarshalSparseCoeff parses and validates one v3 coefficient section.
// sect is exactly the section body (mode byte and payload stripped).
func unmarshalSparseCoeff(mode byte, sect []byte, nCoeff int) (*SparseCoeff, error) {
	switch mode {
	case wireModePairs:
		if len(sect) < 4 {
			return nil, fmt.Errorf("%w: pairs section truncated at %d bytes", ErrWireFormat, len(sect))
		}
		nnz := int(binary.BigEndian.Uint32(sect))
		// Clamp the claimed count by the bytes actually present before any
		// allocation — the decodeBlockList pattern one layer up.
		if nnz < 0 || nnz > (len(sect)-4)/5 || len(sect) != 4+5*nnz {
			return nil, fmt.Errorf("%w: pairs section claims %d entries in %d bytes", ErrWireFormat, nnz, len(sect))
		}
		s := &SparseCoeff{Len: nCoeff}
		if nnz > 0 {
			s.Idx = make([]uint32, nnz)
			s.Val = append([]byte(nil), sect[4+4*nnz:]...)
			prev := -1
			for i := range s.Idx {
				j := binary.BigEndian.Uint32(sect[4+4*i:])
				if int(j) <= prev || int(j) >= nCoeff {
					return nil, fmt.Errorf("%w: sparse index %d (after %d) outside strictly increasing [0, %d)",
						ErrWireFormat, j, prev, nCoeff)
				}
				if s.Val[i] == 0 {
					return nil, fmt.Errorf("%w: zero value at sparse index %d", ErrWireFormat, j)
				}
				s.Idx[i] = j
				prev = int(j)
			}
			// Canonical-mode check: marshal would have picked span had it
			// been cheaper, so such a pairs frame cannot round-trip.
			if lo, hi := s.Support(); 8+(hi-lo) < 4+5*nnz {
				return nil, fmt.Errorf("%w: non-canonical pairs encoding (span is smaller)", ErrWireFormat)
			}
		}
		return s, nil
	case wireModeSpan:
		if len(sect) < 8 {
			return nil, fmt.Errorf("%w: span section truncated at %d bytes", ErrWireFormat, len(sect))
		}
		start := int(binary.BigEndian.Uint32(sect))
		width := int(binary.BigEndian.Uint32(sect[4:]))
		if width < 1 || len(sect) != 8+width {
			return nil, fmt.Errorf("%w: span section claims width %d in %d bytes", ErrWireFormat, width, len(sect))
		}
		if start < 0 || width > nCoeff || start > nCoeff-width {
			return nil, fmt.Errorf("%w: span [%d, %d) outside coefficient range [0, %d)",
				ErrWireFormat, start, start+width, nCoeff)
		}
		raw := sect[8:]
		if raw[0] == 0 || raw[width-1] == 0 {
			return nil, fmt.Errorf("%w: non-canonical span encoding (zero padding at edge)", ErrWireFormat)
		}
		nnz := 0
		for _, v := range raw {
			if v != 0 {
				nnz++
			}
		}
		if !(8+width < 4+5*nnz) {
			return nil, fmt.Errorf("%w: non-canonical span encoding (pairs is smaller)", ErrWireFormat)
		}
		s := &SparseCoeff{
			Len: nCoeff,
			Idx: make([]uint32, 0, nnz),
			Val: make([]byte, 0, nnz),
		}
		for off, v := range raw {
			if v != 0 {
				s.Idx = append(s.Idx, uint32(start+off))
				s.Val = append(s.Val, v)
			}
		}
		return s, nil
	default:
		return nil, fmt.Errorf("%w: unknown sparse coefficient mode %d", ErrWireFormat, mode)
	}
}
