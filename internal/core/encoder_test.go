package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf256"
)

func randomSources(rng *rand.Rand, n, payloadLen int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, payloadLen)
		rng.Read(out[i])
	}
	return out
}

func TestNewEncoderValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	if _, err := NewEncoder(Scheme(0), l, nil); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := NewEncoder(PLC, nil, nil); err == nil {
		t.Error("nil levels accepted")
	}
	if _, err := NewEncoder(PLC, l, [][]byte{{1}}); err == nil {
		t.Error("wrong source count accepted")
	}
	if _, err := NewEncoder(PLC, l, [][]byte{{1}, {2}, {3}, {4, 5}}); err == nil {
		t.Error("ragged sources accepted")
	}
}

func TestEncoderCopiesSources(t *testing.T) {
	l := mustLevels(t, 1)
	src := [][]byte{{7}}
	e, err := NewEncoder(RLC, l, src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 0
	rng := rand.New(rand.NewSource(1))
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Payload must be coeff * 7, not coeff * 0.
	want := gf256.Mul(b.Coeff[0], 7)
	if b.Payload[0] != want {
		t.Errorf("payload %#02x, want %#02x (encoder aliased caller sources)", b.Payload[0], want)
	}
}

func TestEncodeSupportShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := mustLevels(t, 2, 3, 5)
	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		e, err := NewEncoder(scheme, l, nil)
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < l.Count(); level++ {
			lo, hi, err := scheme.Support(l, level)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				b, err := e.Encode(rng, level)
				if err != nil {
					t.Fatal(err)
				}
				if b.Level != level {
					t.Fatalf("%v: block level %d, want %d", scheme, b.Level, level)
				}
				for j, c := range b.Coeff {
					inSupport := j >= lo && j < hi
					if !inSupport && c != 0 {
						t.Fatalf("%v level %d: nonzero coeff outside support at %d", scheme, level, j)
					}
					if inSupport && c == 0 {
						t.Fatalf("%v level %d: dense encoding produced zero coeff at %d", scheme, level, j)
					}
				}
			}
		}
	}
}

func TestEncodePayloadMatchesLinearCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := mustLevels(t, 2, 3)
	sources := randomSources(rng, l.Total(), 16)
	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		e, err := NewEncoder(scheme, l, sources)
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < l.Count(); level++ {
			b, err := e.Encode(rng, level)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 16)
			for j, c := range b.Coeff {
				if c != 0 {
					gf256.AddMulSlice(want, sources[j], c)
				}
			}
			if !bytes.Equal(b.Payload, want) {
				t.Fatalf("%v level %d: payload mismatch", scheme, level)
			}
		}
	}
}

func TestEncodeInvalidLevel(t *testing.T) {
	l := mustLevels(t, 2)
	e, err := NewEncoder(PLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := e.Encode(rng, 1); err == nil {
		t.Error("Encode with out-of-range level succeeded, want error")
	}
	if _, err := e.Encode(rng, -1); err == nil {
		t.Error("Encode with negative level succeeded, want error")
	}
}

func TestSparseEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := mustLevels(t, 50, 50)
	const d = 8
	e, err := NewEncoder(PLC, l, nil, WithSparsity(d))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		b, err := e.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsSparse() {
			t.Fatal("sparse encoder emitted a dense block")
		}
		nnz := 0
		for _, c := range b.DenseCoeff() {
			if c != 0 {
				nnz++
			}
		}
		if nnz != d || b.SpCoeff.NNZ() != d {
			t.Fatalf("sparse block has %d nonzeros (%d entries), want %d", nnz, b.SpCoeff.NNZ(), d)
		}
	}
	// Sparsity wider than the support degrades to dense over the support.
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	nnz := 0
	for _, c := range b.DenseCoeff()[:50] {
		if c != 0 {
			nnz++
		}
	}
	if nnz != d {
		t.Fatalf("level-0 sparse block has %d nonzeros, want %d", nnz, d)
	}
}

func TestSparsityWiderThanSupportIsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := mustLevels(t, 3)
	e, err := NewEncoder(RLC, l, nil, WithSparsity(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range b.Coeff {
		if c == 0 {
			t.Errorf("coeff[%d] = 0, want dense nonzero", j)
		}
	}
}

func TestLogSparsity(t *testing.T) {
	if got := LogSparsity(1); got != 1 {
		t.Errorf("LogSparsity(1) = %d, want 1", got)
	}
	if got := LogSparsity(0); got != 1 {
		t.Errorf("LogSparsity(0) = %d, want 1", got)
	}
	// 3·ln(1000) ≈ 20.7 → 21.
	if got := LogSparsity(1000); got != 21 {
		t.Errorf("LogSparsity(1000) = %d, want 21", got)
	}
}

func TestEncodeBatchLevelFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := mustLevels(t, 10, 10, 10)
	e, err := NewEncoder(SLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := PriorityDistribution{0.6, 0.3, 0.1}
	const m = 30000
	blocks, err := e.EncodeBatch(rng, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != m {
		t.Fatalf("batch size %d, want %d", len(blocks), m)
	}
	counts := make([]int, 3)
	for _, b := range blocks {
		counts[b.Level]++
	}
	for k, want := range p {
		got := float64(counts[k]) / m
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("level %d frequency %g, want %g±0.02", k, got, want)
		}
	}
}

func TestEncodeBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := mustLevels(t, 5, 5)
	e, err := NewEncoder(PLC, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EncodeBatch(rng, PriorityDistribution{1}, 10); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if _, err := e.EncodeBatch(rng, NewUniformDistribution(2), -1); err == nil {
		t.Error("negative count accepted")
	}
	out, err := e.EncodeBatch(rng, NewUniformDistribution(2), 0)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch = %v, %v", out, err)
	}
}

func TestCodedBlockClone(t *testing.T) {
	b := &CodedBlock{Level: 1, Coeff: []byte{1, 2}, Payload: []byte{3}}
	c := b.Clone()
	c.Coeff[0] = 9
	c.Payload[0] = 9
	if b.Coeff[0] != 1 || b.Payload[0] != 3 {
		t.Error("Clone aliases the original block")
	}
}

func TestEncoderAccessors(t *testing.T) {
	l := mustLevels(t, 2, 2)
	sources := randomSources(rand.New(rand.NewSource(9)), 4, 8)
	e, err := NewEncoder(SLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	if e.Scheme() != SLC || e.Levels() != l || e.PayloadLen() != 8 {
		t.Errorf("accessors: %v %v %d", e.Scheme(), e.Levels(), e.PayloadLen())
	}
}
