package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gfmat"
)

func TestChunkLayout(t *testing.T) {
	cl, err := NewChunkLayout(1000, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Step != 224 {
		t.Fatalf("step %d, want 224", cl.Step)
	}
	// Chunks must cover [0, Total): start of chunk i+1 ≤ end of chunk i -
	// overlap ≥ continuity, and the last chunk ends at Total.
	prevHi := 0
	for i := 0; i < cl.Count; i++ {
		lo, hi := cl.Span(i)
		if hi-lo != cl.Size {
			t.Fatalf("chunk %d width %d, want %d", i, hi-lo, cl.Size)
		}
		if lo > prevHi {
			t.Fatalf("chunk %d starts at %d leaving gap after %d", i, lo, prevHi)
		}
		prevHi = hi
	}
	if prevHi != 1000 {
		t.Fatalf("last chunk ends at %d, want 1000", prevHi)
	}

	// Degenerate single chunk.
	one, err := NewChunkLayout(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Count != 1 {
		t.Fatalf("single-chunk count %d", one.Count)
	}

	for _, bad := range [][3]int{{0, 1, 0}, {10, 0, 0}, {10, 11, 0}, {10, 4, 4}, {10, 4, -1}} {
		if _, err := NewChunkLayout(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewChunkLayout%v accepted", bad)
		}
	}
}

// TestChunkedVsMonolithicEquivalence is the chunked-vs-monolithic
// decode-equivalence check: the chunked decoder and a dense monolithic
// oracle fed the densified versions of the same blocks must agree on
// rank, completion and every decoded symbol.
func TestChunkedVsMonolithicEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n, plen = 48, 16
	layout, err := NewChunkLayout(n, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([][]byte, n)
	for i := range sources {
		sources[i] = make([]byte, plen)
		rng.Read(sources[i])
	}
	ce, err := NewChunkedEncoder(layout, sources)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := NewChunkedDecoder(layout, plen)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := gfmat.NewDecoder(n, plen)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := ce.EncodeBatch(rng, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range blocks {
		i1, err := cd.Add(b)
		if err != nil {
			t.Fatal(err)
		}
		i2, err := oracle.AddRef(b.DenseCoeff(), b.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if i1 != i2 {
			t.Fatalf("block %d: innovation chunked %v, monolithic %v", bi, i1, i2)
		}
	}
	if cd.Rank() != oracle.Rank() || cd.Complete() != oracle.Complete() || cd.DecodedCount() != oracle.DecodedCount() {
		t.Fatalf("chunked (rank %d complete %v) vs monolithic (rank %d complete %v)",
			cd.Rank(), cd.Complete(), oracle.Rank(), oracle.Complete())
	}
	if !cd.Complete() {
		t.Fatalf("not complete after %d blocks", len(blocks))
	}
	for i, want := range sources {
		got, err := cd.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("source %d decoded wrong", i)
		}
	}
}

// TestChunkedOverlapRescue pins the expander property the overlap exists
// for: a chunk that received fewer blocks than its width decodes anyway,
// because neighbors' solved overlap columns shrink what it must prove. No
// chunk here has enough blocks to decode alone-except-via-overlap, yet
// the global elimination completes.
func TestChunkedOverlapRescue(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	layout, err := NewChunkLayout(12, 6, 3) // spans [0,6) [3,9) [6,12)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Count != 3 {
		t.Fatalf("count %d, want 3", layout.Count)
	}
	sources := make([][]byte, 12)
	for i := range sources {
		sources[i] = []byte{byte(i), byte(i * 3)}
	}
	ce, err := NewChunkedEncoder(layout, sources)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := NewChunkedDecoder(layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks 0 and 2 get 5 blocks each — one short of their width 6, so
	// neither decodes alone. Chunk 1 (pure overlap coverage) gets 6.
	perChunk := []int{5, 6, 5}
	for chunk, count := range perChunk {
		for i := 0; i < count; i++ {
			b, err := ce.EncodeChunk(rng, chunk)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cd.Add(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cd.Complete() {
		t.Fatalf("overlap rescue failed: rank %d/12, decoded %d", cd.Rank(), cd.DecodedCount())
	}
	for i, want := range sources {
		got, err := cd.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("source %d decoded wrong", i)
		}
	}
	for i := 0; i < 3; i++ {
		if !cd.ChunkDecoded(i) {
			t.Errorf("chunk %d not decoded", i)
		}
	}
}

func TestChunkedDecoderValidation(t *testing.T) {
	layout, err := NewChunkLayout(16, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := NewChunkedDecoder(layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []*CodedBlock{
		nil,
		{Level: 0, SpCoeff: &SparseCoeff{Len: 9, Idx: []uint32{0}, Val: []byte{1}}, Payload: []byte{}},  // wrong length
		{Level: 99, SpCoeff: &SparseCoeff{Len: 16, Idx: []uint32{0}, Val: []byte{1}}, Payload: []byte{}}, // bad chunk
		{Level: 0, SpCoeff: &SparseCoeff{Len: 16, Idx: []uint32{9}, Val: []byte{1}}, Payload: []byte{}},  // escapes span [0,8)
	}
	for i, b := range cases {
		if _, err := cd.Add(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// A dense block over the whole object is legal (monolithic fallback).
	dense := make([]byte, 16)
	dense[3] = 7
	if _, err := cd.Add(&CodedBlock{Level: 0, Coeff: dense, Payload: []byte{}}); err != nil {
		t.Fatalf("dense fallback rejected: %v", err)
	}
}

// TestChunkedWireRoundTrip: chunk blocks ship as compact v3 span frames
// and survive the wire unchanged.
func TestChunkedWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	layout, err := NewChunkLayout(1024, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewChunkedEncoder(layout, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ce.EncodeChunk(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Span mode: header + mode + start + width + 64 raw bytes + no payload.
	if want := wireHeader + 1 + 8 + 64; len(data) != want {
		t.Fatalf("chunk frame %d bytes, want %d (span mode)", len(data), want)
	}
	var back CodedBlock
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.IsSparse() || !bytes.Equal(back.DenseCoeff(), b.DenseCoeff()) || back.Level != 3 {
		t.Fatal("chunk frame round-trip mismatch")
	}
}

func TestAutoCoding(t *testing.T) {
	cases := []struct {
		n    int
		want Coding
	}{
		{1, CodingDense}, {256, CodingDense}, {257, CodingSparse},
		{1024, CodingSparse}, {1025, CodingChunked}, {100000, CodingChunked},
	}
	for _, tc := range cases {
		if got := AutoCoding(tc.n); got != tc.want {
			t.Errorf("AutoCoding(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	for _, s := range []string{"auto", "dense", "sparse", "band", "chunked"} {
		c, err := ParseCoding(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != s {
			t.Errorf("ParseCoding(%q).String() = %q", s, c)
		}
	}
	if _, err := ParseCoding("bogus"); err == nil {
		t.Error("bogus coding accepted")
	}
	cl, err := DefaultChunkLayout(100)
	if err != nil || cl.Size != 100 || cl.Count != 1 {
		t.Errorf("DefaultChunkLayout(100) = %+v, %v", cl, err)
	}
	cl, err = DefaultChunkLayout(5000)
	if err != nil || cl.Size != DefaultChunkSize || cl.Overlap != DefaultChunkOverlap {
		t.Errorf("DefaultChunkLayout(5000) = %+v, %v", cl, err)
	}
}

// FuzzChunkedDecodeEquiv fuzzes the chunked decoder against the dense
// monolithic oracle over random layouts, block mixes and partial decode
// states.
func FuzzChunkedDecodeEquiv(f *testing.F) {
	f.Add(int64(1), uint8(24), uint8(8), uint8(2), uint8(40), uint8(4))
	f.Add(int64(2), uint8(12), uint8(6), uint8(3), uint8(16), uint8(0))
	f.Add(int64(3), uint8(40), uint8(10), uint8(9), uint8(70), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, totalRaw, sizeRaw, overlapRaw, countRaw, plenRaw uint8) {
		total := 1 + int(totalRaw%48)
		size := 1 + int(sizeRaw)%total
		overlap := 0
		if size > 1 {
			overlap = int(overlapRaw) % size
		}
		plen := int(plenRaw % 9)
		nBlocks := int(countRaw)
		layout, err := NewChunkLayout(total, size, overlap)
		if err != nil {
			t.Fatal(err) // all derived values are in range by construction
		}
		rng := rand.New(rand.NewSource(seed))
		sources := make([][]byte, total)
		for i := range sources {
			sources[i] = make([]byte, plen)
			rng.Read(sources[i])
		}
		ce, err := NewChunkedEncoder(layout, sources)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := NewChunkedDecoder(layout, plen)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := gfmat.NewDecoder(total, plen)
		if err != nil {
			t.Fatal(err)
		}
		for bi := 0; bi < nBlocks; bi++ {
			b, err := ce.EncodeChunk(rng, rng.Intn(layout.Count))
			if err != nil {
				t.Fatal(err)
			}
			i1, err := cd.Add(b)
			if err != nil {
				t.Fatal(err)
			}
			i2, err := oracle.AddRef(b.DenseCoeff(), b.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if i1 != i2 {
				t.Fatalf("block %d: innovation chunked %v, monolithic %v", bi, i1, i2)
			}
		}
		if cd.Rank() != oracle.Rank() || cd.DecodedCount() != oracle.DecodedCount() {
			t.Fatalf("rank/decoded: chunked %d/%d, monolithic %d/%d",
				cd.Rank(), cd.DecodedCount(), oracle.Rank(), oracle.DecodedCount())
		}
		for i := 0; i < total; i++ {
			cs, cerr := cd.Source(i)
			os, oerr := oracle.Symbol(i)
			if (cerr == nil) != (oerr == nil) {
				t.Fatalf("source %d: decodability disagrees", i)
			}
			if cerr == nil && plen > 0 {
				if !bytes.Equal(cs, os) || !bytes.Equal(cs, sources[i]) {
					t.Fatalf("source %d: decoded value disagrees", i)
				}
			}
		}
	})
}
