package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// End-to-end tests for the sparse representation: band generation, wire
// transit, decode, and recombination must all preserve and exploit
// sparsity without changing any decode observable.

func TestBandEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := mustLevels(t, 64, 64)
	const w = 8
	e, err := NewEncoder(PLC, l, nil, WithBand(w))
	if err != nil {
		t.Fatal(err)
	}
	seenStart := map[int]bool{}
	for trial := 0; trial < 300; trial++ {
		b, err := e.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsSparse() {
			t.Fatal("band encoder emitted a dense block")
		}
		sp := b.SpCoeff
		if sp.NNZ() != w {
			t.Fatalf("band block has %d entries, want %d", sp.NNZ(), w)
		}
		lo, hi := sp.Support()
		if hi-lo != w {
			t.Fatalf("band support [%d, %d) is not contiguous width %d", lo, hi, w)
		}
		if lo < 0 || hi > 128 {
			t.Fatalf("band [%d, %d) outside PLC support [0, 128)", lo, hi)
		}
		for i, j := range sp.Idx {
			if int(j) != lo+i {
				t.Fatalf("band entry %d at column %d, want contiguous from %d", i, j, lo)
			}
			if sp.Val[i] == 0 {
				t.Fatalf("band value %d is zero", i)
			}
		}
		seenStart[lo] = true
	}
	// Clamping must keep the edges reachable: both the first and the last
	// legal start position appear in 300 draws w.h.p.
	if !seenStart[0] {
		t.Error("band never started at column 0 (edge starved)")
	}
	if !seenStart[128-w] {
		t.Errorf("band never started at the last legal column %d", 128-w)
	}
}

func TestBandWiderThanSupportIsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := mustLevels(t, 4)
	e, err := NewEncoder(RLC, l, nil, WithBand(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.IsSparse() {
		t.Fatal("band wider than the support should degrade to dense")
	}
	for j, c := range b.Coeff {
		if c == 0 {
			t.Errorf("coeff[%d] = 0, want dense nonzero", j)
		}
	}
}

func TestSparsityAndBandExclusive(t *testing.T) {
	l := mustLevels(t, 4)
	if _, err := NewEncoder(RLC, l, nil, WithSparsity(2), WithBand(2)); err == nil {
		t.Fatal("WithSparsity+WithBand accepted")
	}
}

// TestSparseEndToEnd runs the full pipeline the tentpole is about: sparse
// and banded blocks encode sparse, cross the wire sparse, and decode to
// the exact sources — for every scheme.
func TestSparseEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := mustLevels(t, 32, 32)
	sources := make([][]byte, 64)
	for i := range sources {
		sources[i] = make([]byte, 24)
		rng.Read(sources[i])
	}
	for _, scheme := range []Scheme{RLC, PLC, SLC} {
		for _, opt := range []EncoderOption{WithSparsity(10), WithBand(12)} {
			e, err := NewEncoder(scheme, l, sources, opt)
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDecoder(scheme, l, 24)
			if err != nil {
				t.Fatal(err)
			}
			for d.Received() < 2000 && !d.Complete() {
				level := rng.Intn(2)
				b, err := e.Encode(rng, level)
				if err != nil {
					t.Fatal(err)
				}
				if !b.IsSparse() {
					t.Fatalf("%v: encoder densified", scheme)
				}
				data, err := b.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				var back CodedBlock
				if err := back.UnmarshalBinary(data); err != nil {
					t.Fatal(err)
				}
				if !back.IsSparse() {
					t.Fatalf("%v: wire transit densified", scheme)
				}
				if _, err := d.Add(&back); err != nil {
					t.Fatalf("%v: add: %v", scheme, err)
				}
			}
			if !d.Complete() {
				t.Fatalf("%v: not complete after %d blocks (rank %d/64)", scheme, d.Received(), d.Rank())
			}
			for i, want := range sources {
				got, err := d.Source(i)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%v: source %d decoded wrong", scheme, i)
				}
			}
		}
	}
}

func TestDecoderRejectsSparseOutOfSupport(t *testing.T) {
	l := mustLevels(t, 4, 4)
	for _, scheme := range []Scheme{SLC, PLC} {
		d, err := NewDecoder(scheme, l, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Level 0 support is [0, 4) under both schemes; column 6 violates it.
		b := &CodedBlock{
			Level:   0,
			SpCoeff: &SparseCoeff{Len: 8, Idx: []uint32{1, 6}, Val: []byte{3, 5}},
			Payload: []byte{},
		}
		if _, err := d.Add(b); err == nil {
			t.Fatalf("%v: out-of-support sparse block accepted", scheme)
		}
		if d.Received() != 0 {
			t.Fatalf("%v: rejected block counted as received", scheme)
		}
	}
}

// TestRecombineSparseInputs checks that recombination accepts sparse
// inputs natively and produces the same distribution of outputs as the
// densified equivalents: with the same rng, identical blocks.
func TestRecombineSparseInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := mustLevels(t, 8, 8)
	e, err := NewEncoder(PLC, l, nil, WithSparsity(4))
	if err != nil {
		t.Fatal(err)
	}
	var sparse []*CodedBlock
	var dense []*CodedBlock
	for i := 0; i < 6; i++ {
		b, err := e.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		b.Payload = []byte{byte(i), byte(2 * i)}
		sparse = append(sparse, b)
		dense = append(dense, &CodedBlock{Level: b.Level, Coeff: b.DenseCoeff(), Payload: b.Payload})
	}
	outS, rankS, err := RecombineRanked(rand.New(rand.NewSource(77)), PLC, l, sparse)
	if err != nil {
		t.Fatal(err)
	}
	outD, rankD, err := RecombineRanked(rand.New(rand.NewSource(77)), PLC, l, dense)
	if err != nil {
		t.Fatal(err)
	}
	if rankS != rankD {
		t.Fatalf("rank sparse %d, dense %d", rankS, rankD)
	}
	if !bytes.Equal(outS.Coeff, outD.Coeff) || !bytes.Equal(outS.Payload, outD.Payload) || outS.Level != outD.Level {
		t.Fatal("recombine output differs between sparse and densified inputs")
	}
	// Mixed sparse and dense inputs are legal too.
	mixed := []*CodedBlock{sparse[0], dense[1], sparse[2]}
	if _, err := Recombine(rng, PLC, l, mixed); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEncoderSparseBitIdentical pins that the parallel encode path
// produces byte-identical sparse blocks to the sequential one.
func TestParallelEncoderSparseBitIdentical(t *testing.T) {
	l := mustLevels(t, 16, 16)
	sources := make([][]byte, 32)
	rng := rand.New(rand.NewSource(17))
	for i := range sources {
		sources[i] = make([]byte, 40)
		rng.Read(sources[i])
	}
	e, err := NewEncoder(PLC, l, sources, WithBand(5))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelEncoder(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := PriorityDistribution{0.5, 0.5}
	batch1, err := pe.EncodeBatch(99, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := pe.EncodeBatch(99, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch1 {
		a, b := batch1[i], batch2[i]
		if a.Level != b.Level || !a.IsSparse() || !b.IsSparse() {
			t.Fatalf("block %d: representation mismatch", i)
		}
		if !bytes.Equal(a.Payload, b.Payload) || !bytes.Equal(a.DenseCoeff(), b.DenseCoeff()) {
			t.Fatalf("block %d: batches differ across runs", i)
		}
	}
}
