package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// Tests for the structure-aware decode path at the scheme level: SLC
// sub-decoder aggregation under partial recovery, and bit-identical output
// across payload worker counts.

// TestSLCPartialLevelRecovery pins down the sub-decoder aggregation: with
// level 0's small system complete and level 1's underdetermined, exactly
// level 0's blocks must be reported decoded — by LevelDecoded, by
// DecodedBlocks, by Source and by Sources alike.
func TestSLCPartialLevelRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	levels, err := NewLevels(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	const plen = 6
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, plen)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(SLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(SLC, levels, plen)
	if err != nil {
		t.Fatal(err)
	}

	// Enough blocks to complete level 0 (3 unknowns), too few for level 1
	// (4 unknowns, 2 blocks). Retry level-0 encodes past any dependent
	// draws so the level really completes.
	for !dec.LevelDecoded(0) {
		b, err := enc.Encode(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		b, err := enc.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Add(b); err != nil {
			t.Fatal(err)
		}
	}

	if !dec.LevelDecoded(0) {
		t.Fatal("level 0 not decoded")
	}
	if dec.LevelDecoded(1) {
		t.Fatal("underdetermined level 1 reported decoded")
	}
	if dec.Complete() {
		t.Fatal("decoder reported complete")
	}
	if got := dec.DecodedLevels(); got != 1 {
		t.Errorf("DecodedLevels = %d, want 1", got)
	}
	if got := dec.DecodedBlocks(); got != 3 {
		t.Errorf("DecodedBlocks = %d, want exactly level 0's 3", got)
	}
	for i := 0; i < 3; i++ {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatalf("Source(%d): %v", i, err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Errorf("Source(%d) decoded incorrectly", i)
		}
	}
	for i := 3; i < levels.Total(); i++ {
		if _, err := dec.Source(i); err == nil {
			t.Errorf("Source(%d) succeeded on an underdetermined level", i)
		}
	}
	all := dec.Sources()
	for i, s := range all {
		if (i < 3) != (s != nil) {
			t.Errorf("Sources()[%d] = %v, want non-nil only for level 0", i, s != nil)
		}
	}
}

// TestDecodeWorkersBitIdentical: for payloads above the striping threshold
// the decoded sources must be byte-identical whatever SetWorkers was given,
// for every scheme.
func TestDecodeWorkersBitIdentical(t *testing.T) {
	const plen = 20 << 10 // above the gfmat striping threshold
	levels, err := NewLevels(2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(52))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, plen)
		rng.Read(sources[i])
	}

	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		enc, err := NewEncoder(scheme, levels, sources)
		if err != nil {
			t.Fatal(err)
		}
		// A deterministic block set with per-level coverage plus slack, so
		// every scheme decodes completely from the same stream.
		var blocks []*CodedBlock
		for level := 0; level < levels.Count(); level++ {
			for i := 0; i < levels.Size(level)+1; i++ {
				b, err := enc.Encode(rng, level)
				if err != nil {
					t.Fatal(err)
				}
				blocks = append(blocks, b)
			}
		}

		decode := func(workers int) [][]byte {
			dec, err := NewDecoder(scheme, levels, plen)
			if err != nil {
				t.Fatal(err)
			}
			if workers != 0 {
				dec.SetWorkers(workers)
			}
			for _, b := range blocks {
				if _, err := dec.Add(b); err != nil {
					t.Fatal(err)
				}
			}
			if !dec.Complete() {
				t.Fatalf("%v: decode incomplete (rank %d/%d)", scheme, dec.Rank(), levels.Total())
			}
			return dec.Sources()
		}

		base := decode(1)
		for i := range sources {
			if !bytes.Equal(base[i], sources[i]) {
				t.Fatalf("%v: source %d decoded incorrectly", scheme, i)
			}
		}
		for _, workers := range []int{0, 2, 4} {
			got := decode(workers)
			for i := range base {
				if !bytes.Equal(base[i], got[i]) {
					t.Fatalf("%v: source %d differs between 1 and %d workers", scheme, i, workers)
				}
			}
		}
	}
}
