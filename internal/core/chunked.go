package core

import (
	"fmt"
	"math/rand"

	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// Expander-chunked coding (after the Expander Chunked Codes line of
// related work): an object far larger than one comfortable generation is
// covered by overlapping fixed-width chunks, every coded block is a random
// combination over a single chunk's span, and the chunks share Overlap
// columns with their neighbors. Encoding and per-block decode work then
// scale with the chunk size instead of the object size, while the overlap
// couples the chunks: a chunk that received too few blocks of its own is
// rescued by neighbors whose solved overlap columns shrink what it still
// has to prove. Decoding runs as ONE global sparse elimination
// (gfmat.Decoder.AddSparse) whose active-span machinery keeps each row
// operation within O(chunk size) columns — there is never a dense N×N
// matrix, which is what keeps per-byte decode cost near-flat in N.

// ChunkLayout describes the overlapping chunk cover of an object of Total
// source blocks: Count chunks of uniform width Size, consecutive chunks
// sharing Overlap columns. All chunks are full width; the last one is
// clamped back so it ends exactly at Total.
type ChunkLayout struct {
	Total   int
	Size    int
	Overlap int
	Step    int // Size - Overlap, the stride between chunk starts
	Count   int
}

// NewChunkLayout validates and builds a layout. size must be in (0,
// total]; overlap in [0, size). A size covering the whole object yields a
// single chunk (degenerate, monolithic coding).
func NewChunkLayout(total, size, overlap int) (*ChunkLayout, error) {
	if total <= 0 {
		return nil, fmt.Errorf("core: chunk layout total %d, want > 0", total)
	}
	if size <= 0 || size > total {
		return nil, fmt.Errorf("core: chunk size %d outside (0, %d]", size, total)
	}
	if overlap < 0 || overlap >= size {
		return nil, fmt.Errorf("core: chunk overlap %d outside [0, %d)", overlap, size)
	}
	step := size - overlap
	count := 1 + (total-size+step-1)/step
	return &ChunkLayout{Total: total, Size: size, Overlap: overlap, Step: step, Count: count}, nil
}

// Span returns the column range [lo, hi) of chunk i. Every chunk has
// width Size; the last chunk's start is clamped so hi == Total.
func (cl *ChunkLayout) Span(i int) (lo, hi int) {
	lo = i * cl.Step
	if lo > cl.Total-cl.Size {
		lo = cl.Total - cl.Size
	}
	return lo, lo + cl.Size
}

// ValidChunk reports whether i is a chunk index of the layout.
func (cl *ChunkLayout) ValidChunk(i int) bool { return i >= 0 && i < cl.Count }

// ChunkedEncoder produces coded blocks over one chunk at a time. Each
// block's coefficients are dense within its chunk's span and zero outside
// it, carried sparsely (the span wire mode), and the block's Level field
// carries the chunk index so receivers can route it without inspecting
// the coefficients.
type ChunkedEncoder struct {
	layout     *ChunkLayout
	sources    [][]byte // nil for coefficient-only use
	payloadLen int
}

// NewChunkedEncoder builds an encoder over the layout. sources must be
// nil/empty or hold exactly layout.Total equal-length payloads.
func NewChunkedEncoder(layout *ChunkLayout, sources [][]byte) (*ChunkedEncoder, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil chunk layout")
	}
	if layout.Count > 0xFFFF+1 {
		return nil, fmt.Errorf("core: %d chunks do not fit the wire level field", layout.Count)
	}
	ce := &ChunkedEncoder{layout: layout}
	if len(sources) > 0 {
		if len(sources) != layout.Total {
			return nil, fmt.Errorf("core: %d source payloads, want %d", len(sources), layout.Total)
		}
		ce.payloadLen = len(sources[0])
		ce.sources = make([][]byte, len(sources))
		for i, s := range sources {
			if len(s) != ce.payloadLen {
				return nil, fmt.Errorf("core: source %d has %d bytes, want %d", i, len(s), ce.payloadLen)
			}
			ce.sources[i] = append([]byte(nil), s...)
		}
	}
	return ce, nil
}

// Layout returns the encoder's chunk layout.
func (ce *ChunkedEncoder) Layout() *ChunkLayout { return ce.layout }

// PayloadLen returns the per-block payload size in bytes.
func (ce *ChunkedEncoder) PayloadLen() int { return ce.payloadLen }

// EncodeChunk generates one coded block over chunk i: uniformly random
// nonzero coefficients across the chunk's span, carried sparsely.
func (ce *ChunkedEncoder) EncodeChunk(rng *rand.Rand, i int) (*CodedBlock, error) {
	if !ce.layout.ValidChunk(i) {
		return nil, fmt.Errorf("core: chunk %d outside [0, %d)", i, ce.layout.Count)
	}
	lo, hi := ce.layout.Span(i)
	w := hi - lo
	s := &SparseCoeff{Len: ce.layout.Total, Idx: make([]uint32, w), Val: make([]byte, w)}
	for j := 0; j < w; j++ {
		s.Idx[j] = uint32(lo + j)
		s.Val[j] = byte(1 + rng.Intn(255))
	}
	b := &CodedBlock{Level: i, SpCoeff: s}
	if ce.payloadLen > 0 {
		b.Payload = make([]byte, ce.payloadLen)
		for j := lo; j < hi; j++ {
			gf256.AddMulSlice(b.Payload, ce.sources[j], s.Val[j-lo])
		}
	} else {
		b.Payload = []byte{}
	}
	return b, nil
}

// EncodeBatch generates count coded blocks on the cross-chunk overlap
// schedule: round-robin over the chunks, so every prefix of the batch
// spreads its redundancy evenly and neighboring chunks interleave — the
// property that lets the global elimination resolve overlap columns early
// instead of stalling on a starved chunk.
func (ce *ChunkedEncoder) EncodeBatch(rng *rand.Rand, count int) ([]*CodedBlock, error) {
	if count < 0 {
		return nil, fmt.Errorf("core: negative batch count %d", count)
	}
	out := make([]*CodedBlock, 0, count)
	for i := 0; i < count; i++ {
		b, err := ce.EncodeChunk(rng, i%ce.layout.Count)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// ChunkedDecoder decodes chunk-coded blocks through a single global
// sparse elimination. Cross-chunk coupling is free: a solved overlap
// column back-substitutes into every row that touches it, whichever chunk
// the row came from.
type ChunkedDecoder struct {
	layout *ChunkLayout
	dec    *gfmat.Decoder
}

// NewChunkedDecoder builds a decoder for the layout and payload size.
func NewChunkedDecoder(layout *ChunkLayout, payloadLen int) (*ChunkedDecoder, error) {
	if layout == nil {
		return nil, fmt.Errorf("core: nil chunk layout")
	}
	dec, err := gfmat.NewDecoder(layout.Total, payloadLen)
	if err != nil {
		return nil, fmt.Errorf("core: chunked decoder: %w", err)
	}
	return &ChunkedDecoder{layout: layout, dec: dec}, nil
}

// Layout returns the decoder's chunk layout.
func (cd *ChunkedDecoder) Layout() *ChunkLayout { return cd.layout }

// Add absorbs one coded block. A sparse block must fit inside the span of
// the chunk its Level names — the structural invariant that bounds the
// elimination work — and is eliminated without densifying. A dense block
// (a v1 frame from an older writer, or a repair recombination) is
// absorbed through the unbounded path.
func (cd *ChunkedDecoder) Add(b *CodedBlock) (bool, error) {
	if b == nil {
		return false, fmt.Errorf("core: nil coded block")
	}
	if b.CoeffLen() != cd.layout.Total {
		return false, fmt.Errorf("core: coefficient vector length %d, want %d", b.CoeffLen(), cd.layout.Total)
	}
	sp := b.SpCoeff
	if sp == nil {
		innovative, err := cd.dec.Add(b.Coeff, b.Payload)
		if err != nil {
			return false, fmt.Errorf("core: chunked decode: %w", err)
		}
		return innovative, nil
	}
	if !cd.layout.ValidChunk(b.Level) {
		return false, fmt.Errorf("core: block names chunk %d outside [0, %d)", b.Level, cd.layout.Count)
	}
	lo, hi := cd.layout.Span(b.Level)
	if slo, shi := sp.Support(); sp.NNZ() > 0 && (slo < lo || shi > hi) {
		return false, fmt.Errorf("core: chunk-%d block has support [%d, %d) outside chunk span [%d, %d)",
			b.Level, slo, shi, lo, hi)
	}
	innovative, err := cd.dec.AddSparse(sp.Idx, sp.Val, b.Payload)
	if err != nil {
		return false, fmt.Errorf("core: chunked decode: %w", err)
	}
	return innovative, nil
}

// Rank returns the number of innovative blocks absorbed.
func (cd *ChunkedDecoder) Rank() int { return cd.dec.Rank() }

// Complete reports whether every source block is decoded.
func (cd *ChunkedDecoder) Complete() bool { return cd.dec.Complete() }

// DecodedCount returns the number of individually decoded source blocks.
func (cd *ChunkedDecoder) DecodedCount() int { return cd.dec.DecodedCount() }

// ChunkDecoded reports whether every source block of chunk i is decoded.
func (cd *ChunkedDecoder) ChunkDecoded(i int) bool {
	if !cd.layout.ValidChunk(i) {
		return false
	}
	lo, hi := cd.layout.Span(i)
	for j := lo; j < hi; j++ {
		if !cd.dec.Decoded(j) {
			return false
		}
	}
	return true
}

// Source returns the decoded payload of source block i.
func (cd *ChunkedDecoder) Source(i int) ([]byte, error) { return cd.dec.Symbol(i) }

// Sources returns all decoded payloads; undecoded entries are nil.
func (cd *ChunkedDecoder) Sources() [][]byte { return cd.dec.Symbols() }
