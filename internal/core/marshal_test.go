package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		b := &CodedBlock{
			Level:   rng.Intn(100),
			Coeff:   make([]byte, rng.Intn(50)),
			Payload: make([]byte, rng.Intn(50)),
		}
		rng.Read(b.Coeff)
		rng.Read(b.Payload)
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got.Level != b.Level || !bytes.Equal(got.Coeff, b.Coeff) || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
		}
	}
}

func TestMarshalLevelBounds(t *testing.T) {
	b := &CodedBlock{Level: 1 << 17}
	if _, err := b.MarshalBinary(); err == nil {
		t.Error("oversized level accepted")
	}
	b.Level = -1
	if _, err := b.MarshalBinary(); err == nil {
		t.Error("negative level accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("XX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad magic
		[]byte("PB\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad version
		[]byte("PB\x01\x00\x00\x00\x00\x00\x05\x00\x00\x00"),   // header wants 5 coeff bytes, none present
		[]byte("PB\x01\x00\x00\x00\x00\x00\x01\x00\x00\x00ab"), // one trailing byte too many
	}
	var b CodedBlock
	for i, data := range cases {
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("garbage %d accepted", i)
		}
	}
}

func TestUnmarshalCopiesInput(t *testing.T) {
	src := &CodedBlock{Level: 1, Coeff: []byte{1, 2}, Payload: []byte{3}}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got CodedBlock
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	data[wireHeader] = 99 // mutate the buffer
	if got.Coeff[0] != 1 {
		t.Error("UnmarshalBinary aliased the input buffer")
	}
}

func TestMarshalSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		dense := make([]byte, n)
		for j := range dense {
			if rng.Intn(3) == 0 {
				dense[j] = byte(1 + rng.Intn(255))
			}
		}
		// Half the trials use a contiguous band so the span mode is hit.
		if n > 0 && trial%2 == 0 {
			clear(dense)
			w := 1 + rng.Intn(n)
			start := rng.Intn(n - w + 1)
			for j := start; j < start+w; j++ {
				dense[j] = byte(1 + rng.Intn(255))
			}
		}
		b := &CodedBlock{
			Level:   rng.Intn(100),
			SpCoeff: SparsifyCoeff(dense),
			Payload: make([]byte, rng.Intn(30)),
		}
		rng.Read(b.Payload)
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !got.IsSparse() || got.Coeff != nil {
			t.Fatalf("trial %d: sparse block came back dense", trial)
		}
		if got.Level != b.Level || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("trial %d: level/payload mismatch", trial)
		}
		if !bytes.Equal(got.DenseCoeff(), dense) {
			t.Fatalf("trial %d: coefficients mismatch after round trip", trial)
		}
		// Canonical encoding: the round-tripped block re-marshals
		// bit-identically.
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("trial %d: re-marshal differs", trial)
		}
		if len(data) != b.WireSize() {
			t.Fatalf("trial %d: WireSize %d, marshaled %d", trial, b.WireSize(), len(data))
		}
	}
}

// TestMarshalSparseShrinksWire pins the point of the v3 encoding: an
// O(ln N)-sparse vector's coefficient section is a small fraction of the
// dense one.
func TestMarshalSparseShrinksWire(t *testing.T) {
	n := 4096
	d := LogSparsity(n) // 25 for n=4096
	dense := make([]byte, n)
	for i := 0; i < d; i++ {
		dense[i*(n/d)] = byte(1 + i)
	}
	sparse := &CodedBlock{SpCoeff: SparsifyCoeff(dense), Payload: []byte{1}}
	denseB := &CodedBlock{Coeff: dense, Payload: []byte{1}}
	if sparse.WireSize()*10 > denseB.WireSize() {
		t.Fatalf("sparse wire %d not ≪ dense wire %d", sparse.WireSize(), denseB.WireSize())
	}
}

func TestUnmarshalSparseRejectsHostile(t *testing.T) {
	hdr := func(nCoeff, nPay int) []byte {
		out := []byte("PB\x03")
		out = append(out, 0, 7) // level 7
		out = binary.BigEndian.AppendUint32(out, uint32(nCoeff))
		out = binary.BigEndian.AppendUint32(out, uint32(nPay))
		return out
	}
	u32 := func(v uint32) []byte { return binary.BigEndian.AppendUint32(nil, v) }
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases := map[string][]byte{
		"truncated mode byte":  hdr(8, 0),
		"unknown mode":         cat(hdr(8, 0), []byte{9}, u32(0)),
		"pairs count inflated": cat(hdr(8, 0), []byte{0}, u32(1<<30), u32(1), []byte{5}),
		"pairs count short":    cat(hdr(8, 0), []byte{0}, u32(2), u32(1), []byte{5}),
		"index out of range":   cat(hdr(8, 0), []byte{0}, u32(1), u32(8), []byte{5}),
		"duplicate index":      cat(hdr(8, 0), []byte{0}, u32(2), u32(3), u32(3), []byte{5, 6}),
		"decreasing index":     cat(hdr(8, 0), []byte{0}, u32(2), u32(4), u32(2), []byte{5, 6}),
		"zero pair value":      cat(hdr(8, 0), []byte{0}, u32(1), u32(3), []byte{0}),
		"span width zero":      cat(hdr(8, 0), []byte{1}, u32(0), u32(0)),
		"span out of range":    cat(hdr(8, 0), []byte{1}, u32(5), u32(4), []byte{1, 2, 3, 4}),
		"span overflow":        cat(hdr(8, 0), []byte{1}, u32(1<<31), u32(1<<31), []byte{1}),
		"span zero lead edge":  cat(hdr(8, 0), []byte{1}, u32(0), u32(8), []byte{0, 1, 2, 3, 4, 5, 6, 7}),
		"span zero tail edge":  cat(hdr(8, 0), []byte{1}, u32(0), u32(8), []byte{1, 2, 3, 4, 5, 6, 7, 0}),
		"span where pairs win": cat(hdr(64, 0), []byte{1}, u32(0), u32(8), []byte{1, 0, 0, 0, 0, 0, 0, 2}),
		"pairs where span wins": cat(hdr(64, 0), []byte{0}, u32(3),
			u32(0), u32(1), u32(2), []byte{1, 2, 3}),
		"huge claimed nCoeff": cat(hdr(1<<30, 0), []byte{0}, u32(0)),
		"payload truncated":   cat(hdr(8, 4), []byte{0}, u32(0), []byte{1, 2}),
	}
	for name, data := range cases {
		var b CodedBlock
		err := b.UnmarshalBinary(data)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrWireFormat) {
			t.Errorf("%s: error %v does not wrap ErrWireFormat", name, err)
		}
	}
}

// TestUnmarshalDenseBitIdentical pins that the v1 dense encoding is
// byte-for-byte what it was before v3 existed, and still decodes.
func TestUnmarshalDenseBitIdentical(t *testing.T) {
	b := &CodedBlock{Level: 3, Coeff: []byte{1, 0, 2}, Payload: []byte{9, 9}}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("PB\x01\x00\x03\x00\x00\x00\x03\x00\x00\x00\x02\x01\x00\x02\x09\x09")
	if !bytes.Equal(data, want) {
		t.Fatalf("v1 encoding drifted:\ngot  %x\nwant %x", data, want)
	}
	var got CodedBlock
	if err := got.UnmarshalBinary(want); err != nil {
		t.Fatal(err)
	}
	if got.IsSparse() || !bytes.Equal(got.Coeff, b.Coeff) {
		t.Fatalf("v1 frame decoded wrong: %+v", got)
	}
}

// FuzzUnmarshalBinary hardens the wire parser: arbitrary input must never
// panic, and accepted input must re-marshal identically.
func FuzzUnmarshalBinary(f *testing.F) {
	seed := &CodedBlock{Level: 3, Coeff: []byte{1, 0, 2}, Payload: []byte{9, 9}}
	data, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:5])
	f.Add([]byte("PB\x01"))
	sparsePairs := &CodedBlock{Level: 1, SpCoeff: SparsifyCoeff([]byte{0, 7, 0, 0, 0, 0, 0, 9}), Payload: []byte{4}}
	band := make([]byte, 64)
	for i := 10; i < 40; i++ {
		band[i] = byte(i)
	}
	sparseSpan := &CodedBlock{Level: 2, SpCoeff: SparsifyCoeff(band), Payload: []byte{}}
	keyedDense := &CodedBlock{Object: NamedObject("fuzz"), Level: 1, Coeff: []byte{1, 0, 2}, Payload: []byte{9}}
	keyedSparse := &CodedBlock{Object: NamedObject("fuzz"), Level: 2, SpCoeff: SparsifyCoeff([]byte{0, 7, 0, 0, 0, 0, 0, 9}), Payload: []byte{4}}
	for _, sb := range []*CodedBlock{sparsePairs, sparseSpan, keyedDense, keyedSparse} {
		sdata, err := sb.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(sdata)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var b CodedBlock
		if err := b.UnmarshalBinary(in); err != nil {
			return
		}
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted block failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("re-marshal differs:\n in=%x\nout=%x", in, out)
		}
	})
}
