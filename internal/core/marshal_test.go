package core

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		b := &CodedBlock{
			Level:   rng.Intn(100),
			Coeff:   make([]byte, rng.Intn(50)),
			Payload: make([]byte, rng.Intn(50)),
		}
		rng.Read(b.Coeff)
		rng.Read(b.Payload)
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if got.Level != b.Level || !bytes.Equal(got.Coeff, b.Coeff) || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
		}
	}
}

func TestMarshalLevelBounds(t *testing.T) {
	b := &CodedBlock{Level: 1 << 17}
	if _, err := b.MarshalBinary(); err == nil {
		t.Error("oversized level accepted")
	}
	b.Level = -1
	if _, err := b.MarshalBinary(); err == nil {
		t.Error("negative level accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("XX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad magic
		[]byte("PB\x07\x00\x00\x00\x00\x00\x00\x00\x00\x00"),   // bad version
		[]byte("PB\x01\x00\x00\x00\x00\x00\x05\x00\x00\x00"),   // header wants 5 coeff bytes, none present
		[]byte("PB\x01\x00\x00\x00\x00\x00\x01\x00\x00\x00ab"), // one trailing byte too many
	}
	var b CodedBlock
	for i, data := range cases {
		if err := b.UnmarshalBinary(data); err == nil {
			t.Errorf("garbage %d accepted", i)
		}
	}
}

func TestUnmarshalCopiesInput(t *testing.T) {
	src := &CodedBlock{Level: 1, Coeff: []byte{1, 2}, Payload: []byte{3}}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got CodedBlock
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	data[wireHeader] = 99 // mutate the buffer
	if got.Coeff[0] != 1 {
		t.Error("UnmarshalBinary aliased the input buffer")
	}
}

// FuzzUnmarshalBinary hardens the wire parser: arbitrary input must never
// panic, and accepted input must re-marshal identically.
func FuzzUnmarshalBinary(f *testing.F) {
	seed := &CodedBlock{Level: 3, Coeff: []byte{1, 0, 2}, Payload: []byte{9, 9}}
	data, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:5])
	f.Add([]byte("PB\x01"))
	f.Fuzz(func(t *testing.T, in []byte) {
		var b CodedBlock
		if err := b.UnmarshalBinary(in); err != nil {
			return
		}
		out, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted block failed to re-marshal: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("re-marshal differs:\n in=%x\nout=%x", in, out)
		}
	})
}
