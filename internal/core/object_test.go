package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func TestObjectIDStringParseRoundTrip(t *testing.T) {
	ids := []ObjectID{0, 1, 0xDEADBEEF, NamedObject("alpha"), NamedObject("β"), ^ObjectID(0) - 1}
	for _, id := range ids {
		s := id.String()
		got, err := ParseObjectID(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got != id {
			t.Fatalf("%s parsed back as %s", id, got)
		}
	}
	if ZeroObject.String() != "obj-0000000000000000" {
		t.Fatalf("canonical zero form drifted: %s", ZeroObject)
	}
}

func TestNamedObject(t *testing.T) {
	if NamedObject("") != ZeroObject {
		t.Error("empty name is not the legacy zero object")
	}
	if NamedObject("photos") == NamedObject("logs") {
		t.Error("distinct names collided")
	}
	if NamedObject("photos") != NamedObject("photos") {
		t.Error("NamedObject is not deterministic")
	}
	for _, name := range []string{"a", "alpha", "obj", "x/y/z"} {
		id := NamedObject(name)
		if id == ZeroObject || id == AllObjects {
			t.Errorf("NamedObject(%q) hit a reserved value", name)
		}
	}
	// Name resolution through ParseObjectID matches NamedObject directly.
	got, err := ParseObjectID("photos")
	if err != nil {
		t.Fatal(err)
	}
	if got != NamedObject("photos") {
		t.Error("ParseObjectID name path disagrees with NamedObject")
	}
}

func TestParseObjectIDRejects(t *testing.T) {
	for _, s := range []string{
		"obj-123",               // short hex
		"obj-zzzzzzzzzzzzzzzz",  // non-hex
		"obj-00000000000000001", // long hex
		AllObjects.String(),     // reserved wildcard
	} {
		if _, err := ParseObjectID(s); err == nil {
			t.Errorf("ParseObjectID(%q) accepted", s)
		}
	}
}

func TestMarshalKeyedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		b := &CodedBlock{
			Object:  ObjectID(1 + rng.Uint64()%(^uint64(0)-1)),
			Level:   rng.Intn(100),
			Payload: make([]byte, rng.Intn(40)),
		}
		rng.Read(b.Payload)
		if trial%2 == 0 {
			b.Coeff = make([]byte, rng.Intn(40))
			rng.Read(b.Coeff)
		} else {
			dense := make([]byte, 1+rng.Intn(60))
			for j := range dense {
				if rng.Intn(3) == 0 {
					dense[j] = byte(1 + rng.Intn(255))
				}
			}
			b.SpCoeff = SparsifyCoeff(dense)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != b.WireSize() {
			t.Fatalf("trial %d: WireSize %d, marshaled %d", trial, b.WireSize(), len(data))
		}
		wantVer := byte(wireVersionKey)
		if b.IsSparse() {
			wantVer = wireVersionSpKey
		}
		if data[2] != wantVer {
			t.Fatalf("trial %d: keyed block marshaled as version %d", trial, data[2])
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Object != b.Object || got.Level != b.Level {
			t.Fatalf("trial %d: object/level mismatch: got %s/%d want %s/%d",
				trial, got.Object, got.Level, b.Object, b.Level)
		}
		if !bytes.Equal(got.DenseCoeff(), b.DenseCoeff()) || !bytes.Equal(got.Payload, b.Payload) {
			t.Fatalf("trial %d: coeff/payload mismatch", trial)
		}
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("trial %d: re-marshal differs", trial)
		}
	}
}

// TestMarshalZeroObjectBitIdentical pins the compatibility contract: a
// zero-object block marshals to exactly the frame it produced before the
// namespace existed, so dedup-by-bytes and old daemons keep working.
func TestMarshalZeroObjectBitIdentical(t *testing.T) {
	b := &CodedBlock{Level: 3, Coeff: []byte{1, 0, 2}, Payload: []byte{9, 9}}
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("PB\x01\x00\x03\x00\x00\x00\x03\x00\x00\x00\x02\x01\x00\x02\x09\x09")
	if !bytes.Equal(data, want) {
		t.Fatalf("zero-object v1 encoding drifted:\ngot  %x\nwant %x", data, want)
	}
	var got CodedBlock
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Object != ZeroObject {
		t.Fatalf("legacy frame decoded with object %s", got.Object)
	}
}

func TestUnmarshalKeyedRejectsHostile(t *testing.T) {
	mk := func(ver byte, obj uint64, level uint16, coeff, pay []byte) []byte {
		out := []byte("PB")
		out = append(out, ver)
		out = binary.BigEndian.AppendUint64(out, obj)
		out = binary.BigEndian.AppendUint16(out, level)
		out = binary.BigEndian.AppendUint32(out, uint32(len(coeff)))
		out = binary.BigEndian.AppendUint32(out, uint32(len(pay)))
		out = append(out, coeff...)
		out = append(out, pay...)
		return out
	}
	good := mk(wireVersionKey, 42, 1, []byte{1, 2}, []byte{3})
	var b CodedBlock
	if err := b.UnmarshalBinary(good); err != nil {
		t.Fatalf("well-formed keyed frame rejected: %v", err)
	}
	cases := map[string][]byte{
		"zero object in keyed frame":     mk(wireVersionKey, 0, 1, []byte{1}, nil),
		"wildcard object in keyed frame": mk(wireVersionKey, ^uint64(0), 1, []byte{1}, nil),
		"keyed frame truncated mid-id":   good[:8],
		"keyed length off by one":        good[:len(good)-1],
	}
	for name, data := range cases {
		var b CodedBlock
		err := b.UnmarshalBinary(data)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrWireFormat) {
			t.Errorf("%s: error %v does not wrap ErrWireFormat", name, err)
		}
	}
	// The marshal side refuses the wildcard too.
	bad := &CodedBlock{Object: AllObjects, Coeff: []byte{1}}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("marshal accepted the all-objects wildcard")
	}
}

func TestRecombineObject(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	levels, err := NewLevels(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	obj := NamedObject("recombine-object")
	a := &CodedBlock{Object: obj, Level: 0, Coeff: []byte{1, 2, 0, 0}, Payload: []byte{5}}
	b := &CodedBlock{Object: obj, Level: 1, Coeff: []byte{3, 4, 5, 6}, Payload: []byte{7}}
	out, err := Recombine(rng, PLC, levels, []*CodedBlock{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Object != obj {
		t.Fatalf("recombined block carries %s, want %s", out.Object, obj)
	}
	other := &CodedBlock{Object: NamedObject("other"), Level: 1, Coeff: []byte{3, 4, 5, 6}, Payload: []byte{7}}
	if _, err := Recombine(rng, PLC, levels, []*CodedBlock{a, other}); err == nil {
		t.Fatal("mixed-object recombine accepted")
	}
}

func TestCloneKeepsObject(t *testing.T) {
	b := &CodedBlock{Object: NamedObject("clone"), Level: 1, Coeff: []byte{1}, Payload: []byte{2}}
	if c := b.Clone(); c.Object != b.Object {
		t.Fatalf("Clone dropped the object: %s", c.Object)
	}
}

// FuzzParseObjectID hardens the object-spec parser: no panic on arbitrary
// input, and every accepted ID round-trips through its canonical form.
func FuzzParseObjectID(f *testing.F) {
	f.Add("")
	f.Add("photos")
	f.Add("obj-00000000000000ff")
	f.Add("obj-ffffffffffffffff")
	f.Add("obj-short")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseObjectID(s)
		if err != nil {
			return
		}
		if id == AllObjects {
			t.Fatalf("ParseObjectID(%q) returned the reserved wildcard", s)
		}
		back, err := ParseObjectID(id.String())
		if err != nil {
			t.Fatalf("canonical form %s failed to parse: %v", id, err)
		}
		if back != id {
			t.Fatalf("canonical round trip drifted: %s -> %s", id, back)
		}
	})
}

// FuzzObjectFrame hardens the keyed wire versions: any (object, level,
// coeff, payload) combination the marshaler accepts must survive an
// unmarshal round-trip with the object intact, and the frame version must
// match the object (legacy for zero, keyed otherwise).
func FuzzObjectFrame(f *testing.F) {
	f.Add(uint64(0), uint16(0), []byte{}, []byte{})
	f.Add(uint64(42), uint16(3), []byte{1, 0, 2}, []byte{9})
	f.Add(^uint64(0), uint16(1), []byte{1}, []byte{})
	f.Add(uint64(NamedObject("fuzz")), uint16(7), []byte{0, 0, 5}, []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, obj uint64, level uint16, coeff, pay []byte) {
		b := &CodedBlock{Object: ObjectID(obj), Level: int(level), Coeff: coeff, Payload: pay}
		data, err := b.MarshalBinary()
		if err != nil {
			if ObjectID(obj) != AllObjects {
				t.Fatalf("marshal rejected a valid block: %v", err)
			}
			return
		}
		wantVer := byte(wireVersion)
		if obj != 0 {
			wantVer = wireVersionKey
		}
		if data[2] != wantVer {
			t.Fatalf("object %#x marshaled as version %d", obj, data[2])
		}
		var got CodedBlock
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("marshaled frame rejected: %v", err)
		}
		if got.Object != b.Object || got.Level != b.Level ||
			!bytes.Equal(got.Coeff, append([]byte{}, coeff...)) ||
			!bytes.Equal(got.Payload, append([]byte{}, pay...)) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
		}
	})
}
