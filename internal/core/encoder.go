package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/gf256"
)

// CodedBlock is one encoded unit stored in the network: the level it was
// generated for, its coding-coefficient vector over all N source blocks
// (zero outside the scheme's support), and the encoded payload.
//
// The coefficients are carried in exactly one of two representations:
// dense in Coeff, or canonical sparse in SpCoeff (with Coeff nil). Sparse
// blocks stay sparse through marshaling (the v3 wire encoding), decode
// (gfmat.Decoder.AddSparse) and recombination; dense blocks keep the v1
// wire encoding bit for bit.
type CodedBlock struct {
	// Object names the logical data object the block belongs to. The zero
	// object is the key-less legacy namespace: it marshals as the original
	// v1/v3 wire frames, non-zero objects as the keyed v2/v4 frames.
	Object  ObjectID
	Level   int
	Coeff   []byte
	SpCoeff *SparseCoeff
	Payload []byte
}

// IsSparse reports whether the block carries its coefficients sparsely.
func (b *CodedBlock) IsSparse() bool { return b.SpCoeff != nil }

// CoeffLen returns the dense length of the coefficient vector regardless
// of representation.
func (b *CodedBlock) CoeffLen() int {
	if b.SpCoeff != nil {
		return b.SpCoeff.Len
	}
	return len(b.Coeff)
}

// DenseCoeff returns the dense coefficient vector: Coeff itself for a
// dense block (no copy), or a fresh materialization for a sparse one.
// Callers that only need structure should prefer the sparse form.
func (b *CodedBlock) DenseCoeff() []byte {
	if b.SpCoeff != nil {
		return b.SpCoeff.Dense()
	}
	return b.Coeff
}

// Clone returns a deep copy of the block. Nil-ness and emptiness of the
// slices are preserved: a nil Coeff stays nil and an empty non-nil Payload
// stays empty non-nil, so clones remain reflect.DeepEqual to marshaled
// round-trips of the original.
func (b *CodedBlock) Clone() *CodedBlock {
	c := &CodedBlock{Object: b.Object, Level: b.Level}
	if b.Coeff != nil {
		c.Coeff = make([]byte, len(b.Coeff))
		copy(c.Coeff, b.Coeff)
	}
	if b.SpCoeff != nil {
		c.SpCoeff = b.SpCoeff.Clone()
	}
	if b.Payload != nil {
		c.Payload = make([]byte, len(b.Payload))
		copy(c.Payload, b.Payload)
	}
	return c
}

// EncoderOption customizes an Encoder.
type EncoderOption func(*encoderConfig)

type encoderConfig struct {
	sparsity int
	band     int
}

// WithSparsity limits each coded block to at most d nonzero coefficients,
// chosen at uniformly random positions within the block's support. d <= 0
// means dense (the default). Sec. 4 of the paper invokes the Dimakis et al.
// result that d = Θ(ln N) suffices for decodability w.h.p., which is what
// makes the pre-distribution protocol bandwidth-efficient.
func WithSparsity(d int) EncoderOption {
	return func(c *encoderConfig) { c.sparsity = d }
}

// LogSparsity returns the 3·ln(N) coefficient budget (at least 1) commonly
// used with WithSparsity for N source blocks.
func LogSparsity(n int) int {
	if n <= 1 {
		return 1
	}
	d := int(math.Ceil(3 * math.Log(float64(n))))
	if d < 1 {
		d = 1
	}
	return d
}

// WithBand restricts each coded block to a contiguous coefficient band of
// width w placed uniformly at random within the block's support — the
// perpetual-codes generator. The band's center is drawn uniformly and the
// band is clamped to the support, so edge columns keep coverage instead
// of the ~w/2 starvation a uniform start position would give them. A band
// is the sparsity pattern elimination exploits best: the decoder's
// active-span machinery keeps every row operation within O(w) columns.
// w <= 0 means dense (the default); w covering the whole support
// degenerates to dense. Mutually exclusive with WithSparsity.
func WithBand(w int) EncoderOption {
	return func(c *encoderConfig) { c.band = w }
}

// Encoder produces coded blocks for a fixed scheme, level structure and
// source payload set. It is safe for concurrent use only with external
// synchronization of the *rand.Rand passed to Encode.
type Encoder struct {
	scheme     Scheme
	levels     *Levels
	sources    [][]byte // nil when payloadLen == 0 (coefficient-only experiments)
	payloadLen int
	sparsity   int
	band       int
	met        encoderMetrics
}

// NewEncoder constructs an encoder. sources must either be nil/empty (for
// coefficient-only Monte-Carlo experiments, where payloads are skipped) or
// contain exactly levels.Total() equal-length payloads.
func NewEncoder(scheme Scheme, levels *Levels, sources [][]byte, opts ...EncoderOption) (*Encoder, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("core: invalid scheme %v", scheme)
	}
	if levels == nil {
		return nil, fmt.Errorf("core: nil levels")
	}
	var cfg encoderConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sparsity > 0 && cfg.band > 0 {
		return nil, fmt.Errorf("core: WithSparsity and WithBand are mutually exclusive")
	}
	e := &Encoder{
		scheme:   scheme,
		levels:   levels,
		sparsity: cfg.sparsity,
		band:     cfg.band,
	}
	if len(sources) > 0 {
		if len(sources) != levels.Total() {
			return nil, fmt.Errorf("core: %d source payloads, want %d", len(sources), levels.Total())
		}
		e.payloadLen = len(sources[0])
		e.sources = make([][]byte, len(sources))
		for i, s := range sources {
			if len(s) != e.payloadLen {
				return nil, fmt.Errorf("core: source %d has %d bytes, want %d", i, len(s), e.payloadLen)
			}
			e.sources[i] = append([]byte(nil), s...)
		}
	}
	return e, nil
}

// Scheme returns the encoder's coding scheme.
func (e *Encoder) Scheme() Scheme { return e.scheme }

// Levels returns the encoder's priority structure.
func (e *Encoder) Levels() *Levels { return e.levels }

// PayloadLen returns the per-block payload size in bytes (0 when encoding
// coefficients only).
func (e *Encoder) PayloadLen() int { return e.payloadLen }

// Encode generates one coded block for the given level. Coefficients are
// drawn uniformly from the nonzero field elements over the scheme's support
// (or over a sparse random subset / a random band of it when WithSparsity
// or WithBand is set, in which case the block carries its coefficients in
// sparse form and never materializes the dense vector).
func (e *Encoder) Encode(rng *rand.Rand, level int) (*CodedBlock, error) {
	var t0 time.Time
	if e.met.encodeNs != nil {
		t0 = time.Now()
	}
	cd, err := e.drawCoeff(rng, level)
	if err != nil {
		return nil, err
	}
	b := &CodedBlock{Level: level, Coeff: cd.dense, SpCoeff: cd.sp}
	if e.payloadLen > 0 {
		b.Payload = make([]byte, e.payloadLen)
		e.foldPayloadStripe(b.Payload, cd, 0)
	} else {
		b.Payload = []byte{}
	}
	if e.met.encodeNs != nil {
		e.met.blocks.Inc()
		e.met.bytes.Add(uint64(len(b.Payload)))
		e.met.encodeNs.ObserveSince(t0)
	}
	return b, nil
}

// coeffDraw is one drawn coefficient vector: dense over [lo, hi), or
// canonical sparse with dense == nil. Exactly one of the two is set.
type coeffDraw struct {
	dense  []byte
	sp     *SparseCoeff
	lo, hi int
}

// drawCoeff draws one coded block's coefficient vector for the given level
// and returns it together with the scheme's support range. Splitting this
// out of Encode keeps the random-number consumption in one place, so the
// striped and sequential payload paths produce bit-identical blocks from
// the same generator state.
func (e *Encoder) drawCoeff(rng *rand.Rand, level int) (coeffDraw, error) {
	lo, hi, err := e.scheme.Support(e.levels, level)
	if err != nil {
		return coeffDraw{}, err
	}
	span := hi - lo
	if e.sparsity > 0 && e.sparsity < span {
		// Sparse: choose e.sparsity distinct positions within the support.
		// The positions come out of Perm in random order (the order the
		// historical dense path consumed values in, kept so fixed seeds
		// yield the same blocks) and are sorted into canonical form.
		d := e.sparsity
		pos := make([]int, d)
		val := make(map[int]byte, d)
		for i, off := range rng.Perm(span)[:d] {
			pos[i] = lo + off
			val[lo+off] = byte(1 + rng.Intn(255))
		}
		sort.Ints(pos)
		s := &SparseCoeff{Len: e.levels.Total(), Idx: make([]uint32, d), Val: make([]byte, d)}
		for i, p := range pos {
			s.Idx[i] = uint32(p)
			s.Val[i] = val[p]
		}
		return coeffDraw{sp: s, lo: pos[0], hi: pos[d-1] + 1}, nil
	}
	if e.band > 0 && e.band < span {
		// Band: a contiguous run of w nonzero coefficients whose center is
		// uniform over the support, clamped so the run stays inside it.
		w := e.band
		center := lo + rng.Intn(span)
		start := center - w/2
		if start < lo {
			start = lo
		}
		if start > hi-w {
			start = hi - w
		}
		s := &SparseCoeff{Len: e.levels.Total(), Idx: make([]uint32, w), Val: make([]byte, w)}
		for i := 0; i < w; i++ {
			s.Idx[i] = uint32(start + i)
			s.Val[i] = byte(1 + rng.Intn(255))
		}
		return coeffDraw{sp: s, lo: start, hi: start + w}, nil
	}
	coeff := make([]byte, e.levels.Total())
	for j := lo; j < hi; j++ {
		coeff[j] = byte(1 + rng.Intn(255))
	}
	return coeffDraw{dense: coeff, lo: lo, hi: hi}, nil
}

// foldPayloadStripe accumulates the coded payload bytes [off, off+len(dst))
// into dst: dst ^= coeff[j]·sources[j][off:...] over the draw's support.
// Disjoint stripes of the same block are independent, which is what the
// parallel payload path exploits. A sparse draw folds only its nonzero
// entries — the O(ln N) encode cost the sparse representation exists for.
func (e *Encoder) foldPayloadStripe(dst []byte, cd coeffDraw, off int) {
	if cd.sp != nil {
		for i, j := range cd.sp.Idx {
			gf256.AddMulSlice(dst, e.sources[j][off:off+len(dst)], cd.sp.Val[i])
		}
		return
	}
	for j := cd.lo; j < cd.hi; j++ {
		if c := cd.dense[j]; c != 0 {
			gf256.AddMulSlice(dst, e.sources[j][off:off+len(dst)], c)
		}
	}
}

// EncodeBatch draws `count` coded-block levels from the priority
// distribution and encodes each — the random accumulation model of
// Sec. 3.3 ("M randomly accumulated coded blocks").
func (e *Encoder) EncodeBatch(rng *rand.Rand, p PriorityDistribution, count int) ([]*CodedBlock, error) {
	if err := p.Validate(e.levels); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("core: negative batch count %d", count)
	}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		return nil, fmt.Errorf("core: build level sampler: %w", err)
	}
	out := make([]*CodedBlock, 0, count)
	for i := 0; i < count; i++ {
		b, err := e.Encode(rng, sampler.Draw(rng))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
