package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/dist"
	"repro/internal/gf256"
)

// CodedBlock is one encoded unit stored in the network: the level it was
// generated for, its coding-coefficient vector over all N source blocks
// (zero outside the scheme's support), and the encoded payload.
type CodedBlock struct {
	Level   int
	Coeff   []byte
	Payload []byte
}

// Clone returns a deep copy of the block. Nil-ness and emptiness of the
// slices are preserved: a nil Coeff stays nil and an empty non-nil Payload
// stays empty non-nil, so clones remain reflect.DeepEqual to marshaled
// round-trips of the original.
func (b *CodedBlock) Clone() *CodedBlock {
	c := &CodedBlock{Level: b.Level}
	if b.Coeff != nil {
		c.Coeff = make([]byte, len(b.Coeff))
		copy(c.Coeff, b.Coeff)
	}
	if b.Payload != nil {
		c.Payload = make([]byte, len(b.Payload))
		copy(c.Payload, b.Payload)
	}
	return c
}

// EncoderOption customizes an Encoder.
type EncoderOption func(*encoderConfig)

type encoderConfig struct {
	sparsity int
}

// WithSparsity limits each coded block to at most d nonzero coefficients,
// chosen at uniformly random positions within the block's support. d <= 0
// means dense (the default). Sec. 4 of the paper invokes the Dimakis et al.
// result that d = Θ(ln N) suffices for decodability w.h.p., which is what
// makes the pre-distribution protocol bandwidth-efficient.
func WithSparsity(d int) EncoderOption {
	return func(c *encoderConfig) { c.sparsity = d }
}

// LogSparsity returns the 3·ln(N) coefficient budget (at least 1) commonly
// used with WithSparsity for N source blocks.
func LogSparsity(n int) int {
	if n <= 1 {
		return 1
	}
	d := int(math.Ceil(3 * math.Log(float64(n))))
	if d < 1 {
		d = 1
	}
	return d
}

// Encoder produces coded blocks for a fixed scheme, level structure and
// source payload set. It is safe for concurrent use only with external
// synchronization of the *rand.Rand passed to Encode.
type Encoder struct {
	scheme     Scheme
	levels     *Levels
	sources    [][]byte // nil when payloadLen == 0 (coefficient-only experiments)
	payloadLen int
	sparsity   int
	met        encoderMetrics
}

// NewEncoder constructs an encoder. sources must either be nil/empty (for
// coefficient-only Monte-Carlo experiments, where payloads are skipped) or
// contain exactly levels.Total() equal-length payloads.
func NewEncoder(scheme Scheme, levels *Levels, sources [][]byte, opts ...EncoderOption) (*Encoder, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("core: invalid scheme %v", scheme)
	}
	if levels == nil {
		return nil, fmt.Errorf("core: nil levels")
	}
	var cfg encoderConfig
	for _, o := range opts {
		o(&cfg)
	}
	e := &Encoder{
		scheme:   scheme,
		levels:   levels,
		sparsity: cfg.sparsity,
	}
	if len(sources) > 0 {
		if len(sources) != levels.Total() {
			return nil, fmt.Errorf("core: %d source payloads, want %d", len(sources), levels.Total())
		}
		e.payloadLen = len(sources[0])
		e.sources = make([][]byte, len(sources))
		for i, s := range sources {
			if len(s) != e.payloadLen {
				return nil, fmt.Errorf("core: source %d has %d bytes, want %d", i, len(s), e.payloadLen)
			}
			e.sources[i] = append([]byte(nil), s...)
		}
	}
	return e, nil
}

// Scheme returns the encoder's coding scheme.
func (e *Encoder) Scheme() Scheme { return e.scheme }

// Levels returns the encoder's priority structure.
func (e *Encoder) Levels() *Levels { return e.levels }

// PayloadLen returns the per-block payload size in bytes (0 when encoding
// coefficients only).
func (e *Encoder) PayloadLen() int { return e.payloadLen }

// Encode generates one coded block for the given level. Coefficients are
// drawn uniformly from the nonzero field elements over the scheme's support
// (or over a sparse random subset of it when WithSparsity is set).
func (e *Encoder) Encode(rng *rand.Rand, level int) (*CodedBlock, error) {
	var t0 time.Time
	if e.met.encodeNs != nil {
		t0 = time.Now()
	}
	coeff, lo, hi, err := e.drawCoeff(rng, level)
	if err != nil {
		return nil, err
	}
	b := &CodedBlock{Level: level, Coeff: coeff}
	if e.payloadLen > 0 {
		b.Payload = make([]byte, e.payloadLen)
		e.foldPayloadStripe(b.Payload, coeff, lo, hi, 0)
	} else {
		b.Payload = []byte{}
	}
	if e.met.encodeNs != nil {
		e.met.blocks.Inc()
		e.met.bytes.Add(uint64(len(b.Payload)))
		e.met.encodeNs.ObserveSince(t0)
	}
	return b, nil
}

// drawCoeff draws one coded block's coefficient vector for the given level
// and returns it together with the scheme's support range. Splitting this
// out of Encode keeps the random-number consumption in one place, so the
// striped and sequential payload paths produce bit-identical blocks from
// the same generator state.
func (e *Encoder) drawCoeff(rng *rand.Rand, level int) (coeff []byte, lo, hi int, err error) {
	lo, hi, err = e.scheme.Support(e.levels, level)
	if err != nil {
		return nil, 0, 0, err
	}
	coeff = make([]byte, e.levels.Total())
	span := hi - lo
	if e.sparsity > 0 && e.sparsity < span {
		// Sparse: choose e.sparsity distinct positions within the support.
		for _, off := range rng.Perm(span)[:e.sparsity] {
			coeff[lo+off] = byte(1 + rng.Intn(255))
		}
	} else {
		for j := lo; j < hi; j++ {
			coeff[j] = byte(1 + rng.Intn(255))
		}
	}
	return coeff, lo, hi, nil
}

// foldPayloadStripe accumulates the coded payload bytes [off, off+len(dst))
// into dst: dst ^= coeff[j]·sources[j][off:...] over the support [lo, hi).
// Disjoint stripes of the same block are independent, which is what the
// parallel payload path exploits.
func (e *Encoder) foldPayloadStripe(dst, coeff []byte, lo, hi, off int) {
	for j := lo; j < hi; j++ {
		if c := coeff[j]; c != 0 {
			gf256.AddMulSlice(dst, e.sources[j][off:off+len(dst)], c)
		}
	}
}

// EncodeBatch draws `count` coded-block levels from the priority
// distribution and encodes each — the random accumulation model of
// Sec. 3.3 ("M randomly accumulated coded blocks").
func (e *Encoder) EncodeBatch(rng *rand.Rand, p PriorityDistribution, count int) ([]*CodedBlock, error) {
	if err := p.Validate(e.levels); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("core: negative batch count %d", count)
	}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		return nil, fmt.Errorf("core: build level sampler: %w", err)
	}
	out := make([]*CodedBlock, 0, count)
	for i := 0; i < count; i++ {
		b, err := e.Encode(rng, sampler.Draw(rng))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
