package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
)

// ParallelEncoder fans coded-block generation out over a worker pool. Two
// independent axes of parallelism are exploited:
//
//   - Across blocks (EncodeBatch): every coded block of a batch is an
//     independent random combination of the sources, so workers generate
//     whole blocks concurrently. Each block encodes from its own
//     deterministically derived seed, making the batch bit-identical for a
//     fixed parent seed regardless of the worker count or scheduling.
//
//   - Within a block (Encode): for large payloads the payload bytes are
//     split into disjoint stripes and the workers fold all source blocks
//     into their own stripe — the multiply-accumulate over byte range
//     [s, t) of the coded payload only reads byte range [s, t) of every
//     source, so stripes never touch each other's memory.
//
// A ParallelEncoder is safe for concurrent use by multiple goroutines as
// long as the *rand.Rand handed to Encode is externally synchronized, same
// as Encoder.
type ParallelEncoder struct {
	enc     *Encoder
	workers int
}

// stripeMinBytes is the payload size below which striping a single block is
// not worth the goroutine fan-out; such blocks are encoded sequentially.
const stripeMinBytes = 16 << 10

// stripeAlign keeps stripe boundaries on 64-byte lines so the SIMD bulk of
// AddMulSlice stays aligned and workers don't false-share cache lines.
const stripeAlign = 64

// NewParallelEncoder wraps an encoder with a pool of the given size.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewParallelEncoder(enc *Encoder, workers int) (*ParallelEncoder, error) {
	if enc == nil {
		return nil, fmt.Errorf("core: nil encoder")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelEncoder{enc: enc, workers: workers}, nil
}

// Workers returns the pool size.
func (pe *ParallelEncoder) Workers() int { return pe.workers }

// Encoder returns the wrapped sequential encoder.
func (pe *ParallelEncoder) Encoder() *Encoder { return pe.enc }

// Encode generates one coded block for the given level, striping the
// payload fold across the pool when the payload is large enough. The result
// is bit-identical to Encoder.Encode from the same generator state: the
// coefficient draw consumes the same random stream, and the payload is a
// deterministic function of the coefficients.
func (pe *ParallelEncoder) Encode(rng *rand.Rand, level int) (*CodedBlock, error) {
	cd, err := pe.enc.drawCoeff(rng, level)
	if err != nil {
		return nil, err
	}
	b := &CodedBlock{Level: level, Coeff: cd.dense, SpCoeff: cd.sp}
	plen := pe.enc.payloadLen
	if plen == 0 {
		b.Payload = []byte{}
		return b, nil
	}
	b.Payload = make([]byte, plen)
	workers := pe.workers
	if plen < stripeMinBytes || workers <= 1 {
		pe.enc.foldPayloadStripe(b.Payload, cd, 0)
		return b, nil
	}

	// Stripe width: even split rounded up to an aligned boundary.
	stripe := (plen + workers - 1) / workers
	stripe = (stripe + stripeAlign - 1) &^ (stripeAlign - 1)
	var wg sync.WaitGroup
	for off := 0; off < plen; off += stripe {
		end := off + stripe
		if end > plen {
			end = plen
		}
		wg.Add(1)
		go func(off, end int) {
			defer wg.Done()
			pe.enc.foldPayloadStripe(b.Payload[off:end], cd, off)
		}(off, end)
	}
	wg.Wait()
	return b, nil
}

// EncodeBatch draws count coded-block levels from the priority distribution
// and encodes them across the pool — the parallel counterpart of
// Encoder.EncodeBatch. The parent seed drives a single sequential pass that
// fixes each block's level and its private encoding seed, so the output is
// identical for any worker count; workers then encode whole blocks
// concurrently, each with its own rand.Rand reseeded per block.
func (pe *ParallelEncoder) EncodeBatch(seed int64, p PriorityDistribution, count int) ([]*CodedBlock, error) {
	if err := p.Validate(pe.enc.levels); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("core: negative batch count %d", count)
	}
	sampler, err := dist.NewCategorical(p)
	if err != nil {
		return nil, fmt.Errorf("core: build level sampler: %w", err)
	}

	// Sequential prologue: one pass over the parent stream pins down every
	// block's (level, seed) pair before any worker starts.
	parent := rand.New(rand.NewSource(seed))
	blockLevel := make([]int, count)
	blockSeed := make([]int64, count)
	for i := 0; i < count; i++ {
		blockLevel[i] = sampler.Draw(parent)
		blockSeed[i] = parent.Int63()
	}

	out := make([]*CodedBlock, count)
	workers := pe.workers
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		rng := rand.New(rand.NewSource(0))
		for i := 0; i < count; i++ {
			rng.Seed(blockSeed[i])
			b, err := pe.enc.Encode(rng, blockLevel[i])
			if err != nil {
				return nil, err
			}
			out[i] = b
		}
		return out, nil
	}

	var (
		wg   sync.WaitGroup
		next atomic.Int64
		errs = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0))
			for {
				i := int(next.Add(1) - 1)
				if i >= count {
					return
				}
				rng.Seed(blockSeed[i])
				b, err := pe.enc.Encode(rng, blockLevel[i])
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("core: parallel encode block %d: %w", i, err)
					}
					continue
				}
				out[i] = b
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
