package core

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// TestCodingMetrics drives an instrumented encode→decode round and checks
// the registry tells the progressive-decoding story: every block counted,
// innovative vs. redundant split correct, and each level's ready-time
// series populated exactly once.
func TestCodingMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	levels, err := NewLevels(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 16)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetMetrics(reg)
	dec, err := NewDecoder(PLC, levels, 16)
	if err != nil {
		t.Fatal(err)
	}
	dec.SetMetrics(reg)

	const n = 12 // > Total(), so some blocks are redundant
	innovative := 0
	for i := 0; i < n; i++ {
		b, err := enc.Encode(rng, levels.Count()-1)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := dec.Add(b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			innovative++
		}
	}
	if !dec.Complete() {
		t.Fatal("decode incomplete; test needs more blocks")
	}

	if got := reg.Counter("core_encode_blocks_total").Value(); got != n {
		t.Errorf("encode blocks = %d, want %d", got, n)
	}
	if got := reg.Counter("core_encode_bytes_total").Value(); got != n*16 {
		t.Errorf("encode bytes = %d, want %d", got, n*16)
	}
	if got := reg.Counter("core_decode_blocks_total").Value(); got != n {
		t.Errorf("decode blocks = %d, want %d", got, n)
	}
	if got := reg.Counter("core_decode_innovative_total").Value(); got != uint64(innovative) {
		t.Errorf("innovative = %d, want %d", got, innovative)
	}
	if innovative != levels.Total() {
		t.Errorf("innovative = %d, want Total() = %d", innovative, levels.Total())
	}
	if got := reg.Gauge("core_decode_solved_rows").Value(); got != int64(levels.Total()) {
		t.Errorf("solved rows = %d, want %d", got, levels.Total())
	}
	if got := reg.Gauge("core_decode_levels_decoded").Value(); got != int64(levels.Count()) {
		t.Errorf("levels decoded = %d, want %d", got, levels.Count())
	}
	for k := 0; k < levels.Count(); k++ {
		h := reg.Histogram(levelReadyName(k)).Snapshot()
		if h.Count != 1 {
			t.Errorf("level %d ready series has %d samples, want 1", k, h.Count)
		}
	}

	// A rejected block (coefficient outside support) counts as rejected.
	bad := &CodedBlock{Level: 0, Coeff: make([]byte, levels.Total()), Payload: make([]byte, 16)}
	bad.Coeff[levels.Total()-1] = 1 // outside level 0's support
	if _, err := dec.Add(bad); err == nil {
		t.Fatal("out-of-support block accepted")
	}
	if got := reg.Counter("core_decode_rejected_total").Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestSetMetricsNilDetaches confirms detaching returns the hot path to
// its uninstrumented form.
func TestSetMetricsNilDetaches(t *testing.T) {
	reg := metrics.NewRegistry()
	levels, err := NewLevels(1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(RLC, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetMetrics(reg)
	enc.SetMetrics(nil)
	rng := rand.New(rand.NewSource(1))
	if _, err := enc.Encode(rng, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core_encode_blocks_total").Value(); got != 0 {
		t.Errorf("detached encoder recorded %d blocks", got)
	}
}
