package core

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// ObjectID names one logical data object in a multi-object deployment —
// the unit the paper's differentiated persistence is defined over (each
// object carries its own priority levels) and the unit the placement
// layer hashes onto the storage ring. It is a 64-bit value, normally the
// FNV-64a hash of a human-chosen name, with a canonical string form
// "obj-<16 hex digits>" that survives a parse round-trip.
//
// The zero ObjectID is the key-less legacy object: blocks stored before
// the namespace existed (v1/v3 wire frames) decode as object zero, and
// object-zero blocks marshal back to those exact frames, so old and new
// daemons interoperate on the single-object workload.
type ObjectID uint64

// ZeroObject is the key-less legacy object every v1/v3 wire frame
// belongs to.
const ZeroObject ObjectID = 0

// objectIDPrefix is the canonical string form's prefix.
const objectIDPrefix = "obj-"

// IsZero reports whether the ID is the legacy key-less object.
func (o ObjectID) IsZero() bool { return o == 0 }

// String returns the canonical form, "obj-" plus 16 lowercase hex digits.
func (o ObjectID) String() string {
	return fmt.Sprintf("%s%016x", objectIDPrefix, uint64(o))
}

// NamedObject derives an ObjectID from a human-chosen name by FNV-64a.
// The empty name maps to ZeroObject (the key-less legacy object), and a
// hash that would collide with ZeroObject or AllObjects is deterministically
// remapped away from the reserved values, so named objects can always be
// addressed individually.
func NamedObject(name string) ObjectID {
	if name == "" {
		return ZeroObject
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	v := h.Sum64()
	if v == uint64(ZeroObject) || v == uint64(AllObjects) {
		// Reserved-value carve-out: mix with a golden-ratio constant so the
		// remap stays deterministic and well-spread. Astronomically rare,
		// but a silent collision with a sentinel would misroute the object.
		v ^= 0x9E3779B97F4A7C15
	}
	return ObjectID(v)
}

// AllObjects is the store-layer wildcard: reads and inventory scans that
// pass it select every object. It is never a valid block object
// (NamedObject remaps away from it, and MarshalBinary rejects it).
const AllObjects ObjectID = ^ObjectID(0)

// ParseObjectID resolves a user-supplied object spec: the canonical
// "obj-<16 hex>" form parses exactly, anything else is treated as a name
// and hashed with NamedObject. The empty string is the legacy ZeroObject.
func ParseObjectID(s string) (ObjectID, error) {
	if s == "" {
		return ZeroObject, nil
	}
	if strings.HasPrefix(s, objectIDPrefix) {
		hexPart := s[len(objectIDPrefix):]
		if len(hexPart) != 16 {
			return 0, fmt.Errorf("core: object ID %q wants 16 hex digits after %q", s, objectIDPrefix)
		}
		v, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			return 0, fmt.Errorf("core: object ID %q: %v", s, err)
		}
		if ObjectID(v) == AllObjects {
			return 0, fmt.Errorf("core: object ID %q is the reserved all-objects wildcard", s)
		}
		return ObjectID(v), nil
	}
	return NamedObject(s), nil
}
