package core

import (
	"fmt"
	"time"

	"repro/internal/gfmat"
)

// Decoder is the partial decoder of Sec. 3.2. For RLC and PLC it maintains
// a single incremental Gauss–Jordan (RREF) elimination over all N source
// blocks, so decoded prefixes pop out progressively. For SLC it maintains
// one independent elimination per level, since the levels are coded
// separately and decode independently.
type Decoder struct {
	scheme     Scheme
	levels     *Levels
	payloadLen int

	global   *gfmat.Decoder   // RLC, PLC
	perLevel []*gfmat.Decoder // SLC
	received int
	met      decoderMetrics

	// spScratch is the reusable buffer SLC sparse adds shift their indices
	// into level-local coordinates through.
	spScratch []uint32
}

// NewDecoder constructs a decoder for the given scheme and level structure.
func NewDecoder(scheme Scheme, levels *Levels, payloadLen int) (*Decoder, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("core: invalid scheme %v", scheme)
	}
	if levels == nil {
		return nil, fmt.Errorf("core: nil levels")
	}
	if payloadLen < 0 {
		return nil, fmt.Errorf("core: negative payload length %d", payloadLen)
	}
	d := &Decoder{scheme: scheme, levels: levels, payloadLen: payloadLen}
	if scheme == SLC {
		d.perLevel = make([]*gfmat.Decoder, levels.Count())
		for k := range d.perLevel {
			ld, err := gfmat.NewDecoder(levels.Size(k), payloadLen)
			if err != nil {
				return nil, fmt.Errorf("core: level %d decoder: %w", k, err)
			}
			d.perLevel[k] = ld
		}
		return d, nil
	}
	g, err := gfmat.NewDecoder(levels.Total(), payloadLen)
	if err != nil {
		return nil, fmt.Errorf("core: global decoder: %w", err)
	}
	d.global = g
	return d, nil
}

// Scheme returns the decoder's coding scheme.
func (d *Decoder) Scheme() Scheme { return d.scheme }

// Levels returns the decoder's priority structure.
func (d *Decoder) Levels() *Levels { return d.levels }

// Received returns the number of coded blocks offered to Add, innovative
// or not — the paper's M.
func (d *Decoder) Received() int { return d.received }

// Add absorbs one coded block, returning whether it was innovative. The
// block's coefficient vector must be zero outside the support its scheme
// and level dictate; a violating block is rejected with an error, since it
// indicates corruption or a scheme mismatch.
func (d *Decoder) Add(b *CodedBlock) (bool, error) {
	if d.met.addNs == nil {
		return d.add(b)
	}
	// The latency histogram is sampled 1-in-addSampleEvery: two clock
	// reads per Add would cost ~10% on small-payload decodes, and the
	// quantiles of a 1-in-8 sample tell the same story. Counters and
	// progress gauges stay exact.
	var t0 time.Time
	d.met.sample++
	timed := d.met.sample&(addSampleEvery-1) == 0
	if timed {
		t0 = time.Now()
	}
	innovative, err := d.add(b)
	d.recordAdd(t0, timed, innovative, err)
	return innovative, err
}

func (d *Decoder) add(b *CodedBlock) (bool, error) {
	if b == nil {
		return false, fmt.Errorf("core: nil coded block")
	}
	if b.CoeffLen() != d.levels.Total() {
		return false, fmt.Errorf("core: coefficient vector length %d, want %d", b.CoeffLen(), d.levels.Total())
	}
	lo, hi, err := d.scheme.Support(d.levels, b.Level)
	if err != nil {
		return false, err
	}
	if sp := b.SpCoeff; sp != nil {
		return d.addSparse(b, sp, lo, hi)
	}
	for j, c := range b.Coeff {
		if c != 0 && (j < lo || j >= hi) {
			return false, fmt.Errorf("core: %v level-%d block has nonzero coefficient at column %d outside support [%d, %d)",
				d.scheme, b.Level, j, lo, hi)
		}
	}
	d.received++
	if d.scheme == SLC {
		innovative, err := d.perLevel[b.Level].Add(b.Coeff[lo:hi], b.Payload)
		if err != nil {
			return false, fmt.Errorf("core: SLC level %d: %w", b.Level, err)
		}
		return innovative, nil
	}
	// The support check above just proved the coefficients vanish at and
	// beyond hi, so the elimination only needs the first hi columns — for
	// PLC that is the block's level boundary b_k, the structural invariant
	// the level-truncated decode path exploits.
	innovative, err := d.global.AddBounded(b.Coeff, b.Payload, hi)
	if err != nil {
		return false, fmt.Errorf("core: %v decode: %w", d.scheme, err)
	}
	return innovative, nil
}

// addSparse absorbs a block that carries its coefficients sparsely,
// without densifying: the support check is O(nnz), and the elimination
// enters through gfmat's AddSparse scatter path. Structural validation
// (strictly increasing indices in range) happens one layer down.
func (d *Decoder) addSparse(b *CodedBlock, sp *SparseCoeff, lo, hi int) (bool, error) {
	if len(sp.Idx) != len(sp.Val) {
		return false, fmt.Errorf("core: sparse block has %d indices with %d values", len(sp.Idx), len(sp.Val))
	}
	for i, j := range sp.Idx {
		if sp.Val[i] != 0 && (int(j) < lo || int(j) >= hi) {
			return false, fmt.Errorf("core: %v level-%d block has nonzero coefficient at column %d outside support [%d, %d)",
				d.scheme, b.Level, j, lo, hi)
		}
	}
	d.received++
	if d.scheme == SLC {
		// Shift into level-local coordinates through a reusable scratch;
		// the per-level decoder copies what it keeps.
		idx := d.spScratch[:0]
		for _, j := range sp.Idx {
			idx = append(idx, j-uint32(lo))
		}
		d.spScratch = idx
		innovative, err := d.perLevel[b.Level].AddSparse(idx, sp.Val, b.Payload)
		if err != nil {
			return false, fmt.Errorf("core: SLC level %d: %w", b.Level, err)
		}
		return innovative, nil
	}
	innovative, err := d.global.AddSparse(sp.Idx, sp.Val, b.Payload)
	if err != nil {
		return false, fmt.Errorf("core: %v decode: %w", d.scheme, err)
	}
	return innovative, nil
}

// SetWorkers configures payload-striping parallelism on the underlying
// eliminations: payload row operations of each absorbed block are striped
// across up to n goroutines when payloads are large enough to amortize the
// fan-out (see gfmat.Decoder.SetPayloadWorkers). n <= 0 selects
// GOMAXPROCS. Decoded output is bit-identical for any worker count. Not
// safe to call concurrently with Add.
func (d *Decoder) SetWorkers(n int) {
	if d.scheme == SLC {
		for _, ld := range d.perLevel {
			ld.SetPayloadWorkers(n)
		}
		return
	}
	d.global.SetPayloadWorkers(n)
}

// Rank returns the total number of innovative blocks absorbed.
func (d *Decoder) Rank() int {
	if d.scheme == SLC {
		r := 0
		for _, ld := range d.perLevel {
			r += ld.Rank()
		}
		return r
	}
	return d.global.Rank()
}

// Complete reports whether every source block is decoded.
func (d *Decoder) Complete() bool {
	if d.scheme == SLC {
		for _, ld := range d.perLevel {
			if !ld.Complete() {
				return false
			}
		}
		return true
	}
	return d.global.Complete()
}

// LevelDecoded reports whether every source block of level k is decoded.
func (d *Decoder) LevelDecoded(k int) bool {
	if d.levels.ValidLevel(k) != nil {
		return false
	}
	if d.scheme == SLC {
		return d.perLevel[k].Complete()
	}
	return d.global.DecodedPrefix() >= d.levels.CumSize(k)
}

// DecodedLevels returns the strict-priority random variable X of Sec. 3.3:
// the number of consecutive levels, starting from the most important, that
// are fully decoded.
func (d *Decoder) DecodedLevels() int {
	k := 0
	for k < d.levels.Count() && d.LevelDecoded(k) {
		k++
	}
	return k
}

// DecodedBlocks returns the number of individually decoded source blocks,
// including (under SLC) blocks in levels beyond the decoded prefix.
func (d *Decoder) DecodedBlocks() int {
	if d.scheme == SLC {
		n := 0
		for _, ld := range d.perLevel {
			n += ld.DecodedCount()
		}
		return n
	}
	return d.global.DecodedCount()
}

// Source returns the decoded payload of source block i.
func (d *Decoder) Source(i int) ([]byte, error) {
	if i < 0 || i >= d.levels.Total() {
		return nil, fmt.Errorf("core: source index %d out of range [0, %d)", i, d.levels.Total())
	}
	if d.scheme == SLC {
		k, err := d.levels.LevelOf(i)
		if err != nil {
			return nil, err
		}
		lo, _ := d.levels.Span(k)
		payload, err := d.perLevel[k].Symbol(i - lo)
		if err != nil {
			return nil, fmt.Errorf("core: source %d (level %d): %w", i, k, err)
		}
		return payload, nil
	}
	payload, err := d.global.Symbol(i)
	if err != nil {
		return nil, fmt.Errorf("core: source %d: %w", i, err)
	}
	return payload, nil
}

// Sources returns all decoded payloads indexed by source block; undecoded
// entries are nil.
func (d *Decoder) Sources() [][]byte {
	out := make([][]byte, d.levels.Total())
	for i := range out {
		if s, err := d.Source(i); err == nil {
			out[i] = s
		}
	}
	return out
}
