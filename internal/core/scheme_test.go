package core

import (
	"strings"
	"testing"
)

func TestSchemeString(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{RLC, "RLC"}, {SLC, "SLC"}, {PLC, "PLC"}, {Scheme(99), "Scheme(99)"},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"RLC", "rlc", "SLC", "slc", "PLC", "plc"} {
		s, err := ParseScheme(name)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
		}
		if !strings.EqualFold(s.String(), name) {
			t.Errorf("ParseScheme(%q) = %v", name, s)
		}
	}
	if _, err := ParseScheme("XYZ"); err == nil {
		t.Error("ParseScheme(XYZ) succeeded, want error")
	}
}

func TestSchemeValid(t *testing.T) {
	if !RLC.Valid() || !SLC.Valid() || !PLC.Valid() {
		t.Error("known schemes reported invalid")
	}
	if Scheme(0).Valid() || Scheme(4).Valid() {
		t.Error("unknown schemes reported valid")
	}
}

// TestSupportMatchesFig1 checks the three support shapes against the Fig. 1
// example: 3 source blocks, level sizes (1, 2).
func TestSupportMatchesFig1(t *testing.T) {
	l := mustLevels(t, 1, 2)
	cases := []struct {
		scheme Scheme
		level  int
		lo, hi int
	}{
		{RLC, 0, 0, 3}, // RLC rows span everything
		{RLC, 1, 0, 3},
		{SLC, 0, 0, 1}, // Fig. 1(b): level-1 row hits only x1
		{SLC, 1, 1, 3}, // level-2 rows hit x2, x3
		{PLC, 0, 0, 1}, // Fig. 1(c): level-1 row hits x1
		{PLC, 1, 0, 3}, // level-2 rows hit x1..x3
	}
	for _, tc := range cases {
		lo, hi, err := tc.scheme.Support(l, tc.level)
		if err != nil {
			t.Fatalf("%v.Support(level %d): %v", tc.scheme, tc.level, err)
		}
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%v.Support(level %d) = [%d, %d), want [%d, %d)",
				tc.scheme, tc.level, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestSupportErrors(t *testing.T) {
	l := mustLevels(t, 2, 2)
	if _, _, err := PLC.Support(l, 2); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, _, err := Scheme(0).Support(l, 0); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestPriorityDistributionValidate(t *testing.T) {
	l := mustLevels(t, 10, 10, 10)
	if err := NewUniformDistribution(3).Validate(l); err != nil {
		t.Errorf("uniform distribution rejected: %v", err)
	}
	if err := (PriorityDistribution{0.5, 0.5}).Validate(l); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if err := (PriorityDistribution{0.5, 0.6, -0.1}).Validate(l); err == nil {
		t.Error("negative entry accepted")
	}
	// Table 1 Case 2 has a zero entry — must be legal.
	if err := (PriorityDistribution{0, 0.6149, 0.3851}).Validate(l); err != nil {
		t.Errorf("zero-entry distribution rejected: %v", err)
	}
}

func TestPriorityDistributionClone(t *testing.T) {
	p := PriorityDistribution{0.3, 0.7}
	c := p.Clone()
	c[0] = 0.9
	if p[0] != 0.3 {
		t.Error("Clone aliases the original")
	}
}
