package core

import (
	"math/rand"
	"testing"
)

// End-to-end pipeline benchmarks: encode a full batch of coded blocks and
// decode a full-rank accumulation, at the three N the kernel work targets.
// Payloads are 1 KiB — the regime where the word-parallel kernels carry the
// run — and the coded-block count is 1.25·N so decode always completes.

func benchLevels(b *testing.B, n int) *Levels {
	b.Helper()
	levels, err := UniformLevels(4, n/4)
	if err != nil {
		b.Fatal(err)
	}
	return levels
}

func benchSources(n, payloadLen int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, payloadLen)
		rng.Read(out[i])
	}
	return out
}

func benchmarkEncode(b *testing.B, n, workers int) {
	const payloadLen = 1024
	levels := benchLevels(b, n)
	enc, err := NewEncoder(PLC, levels, benchSources(n, payloadLen))
	if err != nil {
		b.Fatal(err)
	}
	pe, err := NewParallelEncoder(enc, workers)
	if err != nil {
		b.Fatal(err)
	}
	count := n + n/4
	p := NewUniformDistribution(levels.Count())
	b.SetBytes(int64(count) * payloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pe.EncodeBatch(int64(i), p, count); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeN64(b *testing.B)   { benchmarkEncode(b, 64, 1) }
func BenchmarkEncodeN256(b *testing.B)  { benchmarkEncode(b, 256, 1) }
func BenchmarkEncodeN1024(b *testing.B) { benchmarkEncode(b, 1024, 1) }

func BenchmarkEncodeN256Workers2(b *testing.B) { benchmarkEncode(b, 256, 2) }
func BenchmarkEncodeN256Workers4(b *testing.B) { benchmarkEncode(b, 256, 4) }

func benchmarkDecode(b *testing.B, n int) {
	const payloadLen = 1024
	levels := benchLevels(b, n)
	enc, err := NewEncoder(PLC, levels, benchSources(n, payloadLen))
	if err != nil {
		b.Fatal(err)
	}
	pe, err := NewParallelEncoder(enc, 1)
	if err != nil {
		b.Fatal(err)
	}
	blocks, err := pe.EncodeBatch(42, NewUniformDistribution(levels.Count()), n+n/4)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blocks)) * payloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(PLC, levels, payloadLen)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func BenchmarkDecodeN64(b *testing.B)   { benchmarkDecode(b, 64) }
func BenchmarkDecodeN256(b *testing.B)  { benchmarkDecode(b, 256) }
func BenchmarkDecodeN1024(b *testing.B) { benchmarkDecode(b, 1024) }
