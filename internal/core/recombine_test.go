package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf256"
	"repro/internal/gfmat"
)

func encodeSet(t *testing.T, rng *rand.Rand, scheme Scheme, levels *Levels, sources [][]byte, count int) []*CodedBlock {
	t.Helper()
	enc, err := NewEncoder(scheme, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, NewUniformDistribution(levels.Count()), count)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func coeffRank(t *testing.T, blocks []*CodedBlock) int {
	t.Helper()
	rows := make([][]byte, len(blocks))
	for i, b := range blocks {
		rows[i] = b.Coeff
	}
	m, err := gfmat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m.Rank()
}

// TestRecombineProducesValidBlocks pins the compatibility rules: the
// output respects the scheme's support (the decoder's own validation
// accepts it) and carries the documented level.
func TestRecombineProducesValidBlocks(t *testing.T) {
	levels := mustLevels(t, 2, 3, 4)
	rng := rand.New(rand.NewSource(7))
	sources := randomSources(rng, levels.Total(), 24)
	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		blocks := encodeSet(t, rng, scheme, levels, sources, 3*levels.Total())
		for trial := 0; trial < 20; trial++ {
			// SLC samples must share a level; PLC/RLC may mix.
			var sample []*CodedBlock
			if scheme == SLC {
				lvl := rng.Intn(levels.Count())
				for _, b := range blocks {
					if b.Level == lvl {
						sample = append(sample, b)
					}
				}
			} else {
				for _, i := range rng.Perm(len(blocks))[:3] {
					sample = append(sample, blocks[i])
				}
			}
			if len(sample) == 0 {
				continue
			}
			nb, err := Recombine(rng, scheme, levels, sample)
			if err != nil {
				t.Fatalf("%v: recombine: %v", scheme, err)
			}
			wantLevel := sample[0].Level
			for _, b := range sample {
				if b.Level > wantLevel {
					wantLevel = b.Level
				}
			}
			if nb.Level != wantLevel {
				t.Fatalf("%v: recombined level %d, want max input level %d", scheme, nb.Level, wantLevel)
			}
			dec, err := NewDecoder(scheme, levels, 24)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dec.Add(nb); err != nil {
				t.Fatalf("%v: decoder rejects recombined block: %v", scheme, err)
			}
			if gf256.IsZero(nb.Coeff) {
				t.Fatalf("%v: recombination of an independent sample cancelled to zero", scheme)
			}
		}
	}
}

// TestRecombineRejectsIncompatibleInputs pins the mixed-scheme and
// mixed-dimension rejections.
func TestRecombineRejectsIncompatibleInputs(t *testing.T) {
	levels := mustLevels(t, 2, 2)
	rng := rand.New(rand.NewSource(9))
	sources := randomSources(rng, levels.Total(), 8)
	slc := encodeSet(t, rng, SLC, levels, sources, 8)

	if _, err := Recombine(rng, SLC, levels, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Recombine(rng, Scheme(0), levels, slc[:1]); err == nil {
		t.Fatal("invalid scheme accepted")
	}
	if _, err := Recombine(rng, SLC, nil, slc[:1]); err == nil {
		t.Fatal("nil levels accepted")
	}
	if _, err := Recombine(rng, SLC, levels, []*CodedBlock{slc[0], nil}); err == nil {
		t.Fatal("nil block accepted")
	}

	// Mixed SLC levels: find two blocks of different levels.
	var a, b *CodedBlock
	for _, blk := range slc {
		if a == nil {
			a = blk
		} else if blk.Level != a.Level {
			b = blk
			break
		}
	}
	if b == nil {
		t.Fatal("test setup: need two SLC levels")
	}
	if _, err := Recombine(rng, SLC, levels, []*CodedBlock{a, b}); err == nil {
		t.Fatal("mixed-level SLC sample accepted")
	}

	// Mixed dimensions: a block from a different code length.
	short := &CodedBlock{Level: 0, Coeff: []byte{1}, Payload: make([]byte, 8)}
	if _, err := Recombine(rng, SLC, levels, []*CodedBlock{a, short}); err == nil {
		t.Fatal("mixed coefficient dimensions accepted")
	}
	pay := &CodedBlock{Level: a.Level, Coeff: append([]byte(nil), a.Coeff...), Payload: make([]byte, 4)}
	if _, err := Recombine(rng, SLC, levels, []*CodedBlock{a, pay}); err == nil {
		t.Fatal("mixed payload lengths accepted")
	}

	// A mislabeled block (support violation) — e.g. an SLC level-1 block
	// smuggled in as level 0 — must be rejected, not recombined.
	bad := b.Clone()
	bad.Level = 0
	if _, err := Recombine(rng, SLC, levels, []*CodedBlock{bad}); err == nil {
		t.Fatal("out-of-support coefficients accepted")
	}
}

// TestRecombineRanked pins the rank report: duplicates collapse the
// span, and an all-zero sample fails with the typed sentinel.
func TestRecombineRanked(t *testing.T) {
	levels := mustLevels(t, 2, 2)
	rng := rand.New(rand.NewSource(11))
	sources := randomSources(rng, levels.Total(), 8)
	blocks := encodeSet(t, rng, PLC, levels, sources, 12)

	nb, rank, err := RecombineRanked(rng, PLC, levels, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if want := coeffRank(t, blocks); rank != want {
		t.Fatalf("rank = %d, want %d", rank, want)
	}
	if nb == nil || gf256.IsZero(nb.Coeff) {
		t.Fatal("full-rank sample produced a useless block")
	}

	// The same block three times over spans one dimension.
	dup := []*CodedBlock{blocks[0], blocks[0].Clone(), blocks[0].Clone()}
	nb, rank, err = RecombineRanked(rng, PLC, levels, dup)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Fatalf("duplicate sample rank = %d, want 1", rank)
	}
	// The redraw loop keeps even a dependent sample's output nonzero.
	if gf256.IsZero(nb.Coeff) {
		t.Fatal("duplicate sample cancelled to zero despite redraws")
	}

	zero := &CodedBlock{Level: 0, Coeff: make([]byte, levels.Total()), Payload: make([]byte, 8)}
	if _, _, err := RecombineRanked(rng, PLC, levels, []*CodedBlock{zero, zero.Clone()}); !errors.Is(err, ErrDegenerateInputs) {
		t.Fatalf("err = %v, want ErrDegenerateInputs", err)
	}
}

// recombineEquiv is the satellite equivalence property: a store holding
// only recombined blocks decodes exactly like one holding the originals,
// whenever recombination preserved the span — and decoded payloads are
// always the true sources. Deterministic given (scheme, seed).
func recombineEquiv(t *testing.T, scheme Scheme, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, 2+rng.Intn(3))
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(4)
	}
	levels := mustLevels(t, sizes...)
	const payloadLen = 16
	sources := randomSources(rng, levels.Total(), payloadLen)
	originals := encodeSet(t, rng, scheme, levels, sources, levels.Total()+2*levels.Count())

	// One fresh recombination per original, drawn from the full eligible
	// pool (same level for SLC, level-prefix for PLC/RLC). The pool always
	// contains the original itself, so the output keeps its level and the
	// per-level block counts of the two sets match exactly.
	recombined := make([]*CodedBlock, 0, len(originals))
	for _, b := range originals {
		var pool []*CodedBlock
		for _, o := range originals {
			if (scheme == SLC && o.Level == b.Level) || (scheme != SLC && o.Level <= b.Level) {
				pool = append(pool, o)
			}
		}
		nb, err := Recombine(rng, scheme, levels, pool)
		if err != nil {
			t.Fatalf("%v seed %d: recombine: %v", scheme, seed, err)
		}
		if nb.Level != b.Level {
			t.Fatalf("%v seed %d: recombined level %d, want %d", scheme, seed, nb.Level, b.Level)
		}
		recombined = append(recombined, nb)
	}

	rankO, rankR := coeffRank(t, originals), coeffRank(t, recombined)
	if rankR > rankO {
		t.Fatalf("%v seed %d: recombined rank %d exceeds original %d", scheme, seed, rankR, rankO)
	}

	decode := func(blocks []*CodedBlock) *Decoder {
		dec, err := NewDecoder(scheme, levels, payloadLen)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if _, err := dec.Add(b); err != nil {
				t.Fatalf("%v seed %d: add: %v", scheme, seed, err)
			}
		}
		return dec
	}
	decO, decR := decode(originals), decode(recombined)

	// Whatever the recombined store decodes must be the true data.
	for i := range sources {
		if p, err := decR.Source(i); err == nil && !bytes.Equal(p, sources[i]) {
			t.Fatalf("%v seed %d: recombined store decoded source %d wrongly", scheme, seed, i)
		}
	}
	if decR.DecodedLevels() > decO.DecodedLevels() || decR.DecodedBlocks() > decO.DecodedBlocks() {
		t.Fatalf("%v seed %d: recombined store decoded more (%d levels/%d blocks) than the originals (%d/%d)",
			scheme, seed, decR.DecodedLevels(), decR.DecodedBlocks(), decO.DecodedLevels(), decO.DecodedBlocks())
	}
	if rankR == rankO {
		// Equal rank means equal span (recombined ⊆ span(originals)), so
		// prefix recovery must match exactly.
		if decR.DecodedLevels() != decO.DecodedLevels() || decR.DecodedBlocks() != decO.DecodedBlocks() {
			t.Fatalf("%v seed %d: span preserved but recovery drifted: recombined %d levels/%d blocks, originals %d/%d",
				scheme, seed, decR.DecodedLevels(), decR.DecodedBlocks(), decO.DecodedLevels(), decO.DecodedBlocks())
		}
	}
}

func TestRecombineDecodingEquivalence(t *testing.T) {
	for _, scheme := range []Scheme{SLC, PLC} {
		for seed := int64(1); seed <= 12; seed++ {
			recombineEquiv(t, scheme, seed)
		}
	}
}

// FuzzRecombineEquiv drives the equivalence property from fuzzed seeds:
// for any (scheme, seed), decoding a recombined-only store matches the
// original store's prefix recovery whenever the span was preserved, and
// never yields wrong payloads.
func FuzzRecombineEquiv(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(2), true)
	f.Add(int64(42), false)
	f.Add(int64(1337), true)
	f.Fuzz(func(t *testing.T, seed int64, plc bool) {
		scheme := SLC
		if plc {
			scheme = PLC
		}
		recombineEquiv(t, scheme, seed)
	})
}
