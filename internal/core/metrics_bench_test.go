package core

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// Metrics-overhead benchmarks, captured by `make bench-metrics` into
// BENCH_metrics.json. Each Metered benchmark runs the hot path with a
// live registry attached; its Ref twin runs the identical workload with
// metrics detached. The paired "speedup" (ref_ns / metered_ns) is
// therefore the inverse of the instrumentation overhead: a value of
// 0.95 means metrics cost 5%. The issue budget is ≤5% on every pair.

func benchmarkMeteredEncode(b *testing.B, instrumented bool) {
	levels := decodeBenchLevels(b, 64, 8)
	enc, err := NewEncoder(PLC, levels, benchSources(levels.Total(), 4<<10))
	if err != nil {
		b.Fatal(err)
	}
	if instrumented {
		enc.SetMetrics(metrics.NewRegistry())
	}
	rng := rand.New(rand.NewSource(9))
	top := levels.Count() - 1
	b.SetBytes(4 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(rng, top); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeteredEncode(b *testing.B)    { benchmarkMeteredEncode(b, true) }
func BenchmarkMeteredEncodeRef(b *testing.B) { benchmarkMeteredEncode(b, false) }

func benchmarkMeteredDecode(b *testing.B, instrumented bool) {
	const payloadLen = 64
	levels := decodeBenchLevels(b, 64, 8)
	blocks := decodeBenchBlocks(b, PLC, levels, payloadLen)
	b.SetBytes(int64(len(blocks)) * payloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(PLC, levels, payloadLen)
		if err != nil {
			b.Fatal(err)
		}
		if instrumented {
			b.StopTimer()
			dec.SetMetrics(metrics.NewRegistry()) // registry setup off the clock
			b.StartTimer()
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatal("decode incomplete")
		}
	}
}

func BenchmarkMeteredDecode(b *testing.B)    { benchmarkMeteredDecode(b, true) }
func BenchmarkMeteredDecodeRef(b *testing.B) { benchmarkMeteredDecode(b, false) }
