package core

import (
	"math/rand"
	"testing"

	"repro/internal/gfmat"
)

// Dense-vs-truncated decode benchmarks, captured by `make bench-decode`
// into BENCH_decode.json. Each structured benchmark (core.Decoder: level
// boundary hints for PLC, per-level sub-decoders for SLC) pairs with a Ref
// twin that feeds the identical block stream through the dense
// structure-blind elimination (gfmat.Decoder.AddRef) over the full N-wide
// system — the decode path as it was before level truncation. Payloads are
// 64 B so the coefficient-side elimination dominates, which is the regime
// of the paper's Monte-Carlo loops (N = 1000 × 100 trials per curve
// point); DecodeStriped covers the opposite, payload-dominated regime.

// decodeBenchLevels splits n blocks into nLevels levels as evenly as
// possible (the first n%nLevels levels get one extra block).
func decodeBenchLevels(b *testing.B, n, nLevels int) *Levels {
	b.Helper()
	base, rem := n/nLevels, n%nLevels
	sizes := make([]int, nLevels)
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	levels, err := NewLevels(sizes...)
	if err != nil {
		b.Fatal(err)
	}
	return levels
}

// decodeBenchBlocks encodes a deterministic block stream with guaranteed
// full-rank coverage: size_k + 2 blocks per level, shuffled.
func decodeBenchBlocks(b *testing.B, scheme Scheme, levels *Levels, payloadLen int) []*CodedBlock {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	enc, err := NewEncoder(scheme, levels, benchSources(levels.Total(), payloadLen))
	if err != nil {
		b.Fatal(err)
	}
	var blocks []*CodedBlock
	for level := 0; level < levels.Count(); level++ {
		for i := 0; i < levels.Size(level)+2; i++ {
			blk, err := enc.Encode(rng, level)
			if err != nil {
				b.Fatal(err)
			}
			blocks = append(blocks, blk)
		}
	}
	rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	return blocks
}

func benchmarkStructuredDecode(b *testing.B, scheme Scheme, n, nLevels, payloadLen int) {
	levels := decodeBenchLevels(b, n, nLevels)
	blocks := decodeBenchBlocks(b, scheme, levels, payloadLen)
	b.SetBytes(int64(len(blocks)) * int64(payloadLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(scheme, levels, payloadLen)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

// benchmarkDenseDecodeRef is the ablation baseline: the same blocks, one
// flat N-unknown elimination, full-width row operations.
func benchmarkDenseDecodeRef(b *testing.B, scheme Scheme, n, nLevels, payloadLen int) {
	levels := decodeBenchLevels(b, n, nLevels)
	blocks := decodeBenchBlocks(b, scheme, levels, payloadLen)
	b.SetBytes(int64(len(blocks)) * int64(payloadLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := gfmat.NewDecoder(n, payloadLen)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.AddRef(blk.Coeff, blk.Payload); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

const decodeBenchPayload = 64

func BenchmarkDecodePLCN64(b *testing.B)     { benchmarkStructuredDecode(b, PLC, 64, 8, decodeBenchPayload) }
func BenchmarkDecodePLCN64Ref(b *testing.B)  { benchmarkDenseDecodeRef(b, PLC, 64, 8, decodeBenchPayload) }
func BenchmarkDecodePLCN256(b *testing.B)    { benchmarkStructuredDecode(b, PLC, 256, 16, decodeBenchPayload) }
func BenchmarkDecodePLCN256Ref(b *testing.B) { benchmarkDenseDecodeRef(b, PLC, 256, 16, decodeBenchPayload) }
func BenchmarkDecodePLCN1024(b *testing.B) {
	benchmarkStructuredDecode(b, PLC, 1024, 50, decodeBenchPayload)
}
func BenchmarkDecodePLCN1024Ref(b *testing.B) {
	benchmarkDenseDecodeRef(b, PLC, 1024, 50, decodeBenchPayload)
}

func BenchmarkDecodeSLCN64(b *testing.B)     { benchmarkStructuredDecode(b, SLC, 64, 8, decodeBenchPayload) }
func BenchmarkDecodeSLCN64Ref(b *testing.B)  { benchmarkDenseDecodeRef(b, SLC, 64, 8, decodeBenchPayload) }
func BenchmarkDecodeSLCN256(b *testing.B)    { benchmarkStructuredDecode(b, SLC, 256, 16, decodeBenchPayload) }
func BenchmarkDecodeSLCN256Ref(b *testing.B) { benchmarkDenseDecodeRef(b, SLC, 256, 16, decodeBenchPayload) }
func BenchmarkDecodeSLCN1024(b *testing.B) {
	benchmarkStructuredDecode(b, SLC, 1024, 50, decodeBenchPayload)
}
func BenchmarkDecodeSLCN1024Ref(b *testing.B) {
	benchmarkDenseDecodeRef(b, SLC, 1024, 50, decodeBenchPayload)
}

// DecodeStriped exercises the payload-parallel pipeline: 128 KiB payloads,
// where the payload-side AddMulSlice work dominates and WorkersK stripes it
// across a pool. Pairs WorkersK against the 1-worker run in BENCH_decode.json
// (bounded by num_cpu, like the encode pipeline).
func benchmarkStripedDecode(b *testing.B, workers int) {
	const n, nLevels, payloadLen = 64, 8, 128 << 10
	levels := decodeBenchLevels(b, n, nLevels)
	blocks := decodeBenchBlocks(b, PLC, levels, payloadLen)
	b.SetBytes(int64(len(blocks)) * int64(payloadLen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(PLC, levels, payloadLen)
		if err != nil {
			b.Fatal(err)
		}
		dec.SetWorkers(workers)
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
			if dec.Complete() {
				break
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func BenchmarkDecodeStripedN64(b *testing.B)         { benchmarkStripedDecode(b, 1) }
func BenchmarkDecodeStripedN64Workers2(b *testing.B) { benchmarkStripedDecode(b, 2) }
func BenchmarkDecodeStripedN64Workers4(b *testing.B) { benchmarkStripedDecode(b, 4) }
