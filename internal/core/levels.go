// Package core implements the paper's contribution: priority random linear
// codes. It provides the priority-level structure (Sec. 2), the three
// coding schemes — baseline Random Linear Codes (RLC), Stacked Linear Codes
// (SLC) and Progressive Linear Codes (PLC) of Sec. 3.1 — their partial
// decoders (Sec. 3.2), priority distributions over coded-block levels, and
// the sparse O(ln N) coefficient variant of Sec. 4.
//
// Levels are 0-based in this API: level 0 is the most important. The
// paper's 1-based a_i and b_i correspond to Size(i-1) and CumSize(i-1).
package core

import (
	"fmt"
)

// Levels describes how the N source blocks partition into priority levels
// in descending importance: blocks [0, Size(0)) are level 0 (most
// important), the next Size(1) blocks are level 1, and so on.
//
// Levels is immutable after construction and safe for concurrent use.
type Levels struct {
	sizes []int // a_i
	cum   []int // b_i: cum[i] = sizes[0] + ... + sizes[i]
}

// NewLevels constructs a priority structure from per-level block counts.
// Every level must contain at least one block.
func NewLevels(sizes ...int) (*Levels, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("core: at least one priority level is required")
	}
	l := &Levels{
		sizes: make([]int, len(sizes)),
		cum:   make([]int, len(sizes)),
	}
	total := 0
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("core: level %d has size %d, want > 0", i, s)
		}
		total += s
		l.sizes[i] = s
		l.cum[i] = total
	}
	return l, nil
}

// UniformLevels returns n levels of perLevel blocks each.
func UniformLevels(n, perLevel int) (*Levels, error) {
	if n <= 0 || perLevel <= 0 {
		return nil, fmt.Errorf("core: UniformLevels(%d, %d): both arguments must be positive", n, perLevel)
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = perLevel
	}
	return NewLevels(sizes...)
}

// Count returns the number of priority levels n.
func (l *Levels) Count() int { return len(l.sizes) }

// Total returns the total number of source blocks N.
func (l *Levels) Total() int { return l.cum[len(l.cum)-1] }

// Size returns a_{i+1}, the number of source blocks in level i.
func (l *Levels) Size(i int) int { return l.sizes[i] }

// CumSize returns b_{i+1}, the number of source blocks in levels 0..i.
func (l *Levels) CumSize(i int) int { return l.cum[i] }

// Sizes returns a copy of the per-level block counts.
func (l *Levels) Sizes() []int {
	out := make([]int, len(l.sizes))
	copy(out, l.sizes)
	return out
}

// Span returns the half-open source-block index range [lo, hi) of level i.
func (l *Levels) Span(i int) (lo, hi int) {
	if i == 0 {
		return 0, l.cum[0]
	}
	return l.cum[i-1], l.cum[i]
}

// LevelOf returns the level containing source block index b, or an error
// if b is out of range.
func (l *Levels) LevelOf(b int) (int, error) {
	if b < 0 || b >= l.Total() {
		return 0, fmt.Errorf("core: block index %d out of range [0, %d)", b, l.Total())
	}
	// Binary search over the cumulative boundaries.
	lo, hi := 0, len(l.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b < l.cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// ValidLevel returns an error unless 0 <= k < Count().
func (l *Levels) ValidLevel(k int) error {
	if k < 0 || k >= l.Count() {
		return fmt.Errorf("core: level %d out of range [0, %d)", k, l.Count())
	}
	return nil
}

// PrefixLevels returns the number of complete levels covered by a decoded
// prefix of `prefix` source blocks — the random variable X of Sec. 3.3
// evaluated on a PLC decoding state.
func (l *Levels) PrefixLevels(prefix int) int {
	k := 0
	for k < len(l.cum) && l.cum[k] <= prefix {
		k++
	}
	return k
}

func (l *Levels) String() string {
	return fmt.Sprintf("Levels{n=%d, N=%d, sizes=%v}", l.Count(), l.Total(), l.sizes)
}
