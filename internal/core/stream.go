package core

import (
	"fmt"
	"io"
)

// Stream couples a partial decoder with in-order payload delivery: every
// absorbed coded block may release newly decoded prefix payloads to the
// sink, in source order. This is the streaming face of progressive
// decoding — a media player or log processor consumes the most important
// prefix while the rest of the blocks are still in flight (or lost).
type Stream struct {
	dec       *Decoder
	sink      io.Writer
	delivered int // source blocks already written to the sink
}

// NewStream constructs a streaming decoder writing decoded prefix
// payloads to sink.
func NewStream(scheme Scheme, levels *Levels, payloadLen int, sink io.Writer) (*Stream, error) {
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	if payloadLen <= 0 {
		return nil, fmt.Errorf("core: stream payload length %d, want > 0", payloadLen)
	}
	dec, err := NewDecoder(scheme, levels, payloadLen)
	if err != nil {
		return nil, err
	}
	return &Stream{dec: dec, sink: sink}, nil
}

// Add absorbs a coded block and flushes any newly decoded prefix payloads
// to the sink. It returns whether the block was innovative.
func (s *Stream) Add(b *CodedBlock) (bool, error) {
	innovative, err := s.dec.Add(b)
	if err != nil {
		return false, err
	}
	if err := s.flush(); err != nil {
		return innovative, err
	}
	return innovative, nil
}

// flush writes every contiguous newly decoded source payload.
func (s *Stream) flush() error {
	total := s.dec.Levels().Total()
	for s.delivered < total {
		payload, err := s.dec.Source(s.delivered)
		if err != nil {
			return nil // prefix ends here for now
		}
		if _, err := s.sink.Write(payload); err != nil {
			return fmt.Errorf("core: stream sink: %w", err)
		}
		s.delivered++
	}
	return nil
}

// Delivered returns the number of source blocks written to the sink.
func (s *Stream) Delivered() int { return s.delivered }

// DeliveredLevels returns how many complete priority levels have been
// delivered.
func (s *Stream) DeliveredLevels() int { return s.dec.Levels().PrefixLevels(s.delivered) }

// Complete reports whether the whole source has been delivered.
func (s *Stream) Complete() bool { return s.delivered == s.dec.Levels().Total() }

// Received returns the number of coded blocks offered so far.
func (s *Stream) Received() int { return s.dec.Received() }
