package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestNewStreamValidation(t *testing.T) {
	l := mustLevels(t, 2, 2)
	if _, err := NewStream(PLC, l, 4, nil); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := NewStream(PLC, l, 0, &bytes.Buffer{}); err == nil {
		t.Error("zero payload length accepted")
	}
	if _, err := NewStream(Scheme(0), l, 4, &bytes.Buffer{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}

// TestStreamDeliversInOrder feeds a PLC stream and checks the sink
// receives exactly the source payloads, in order, progressively.
func TestStreamDeliversInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := mustLevels(t, 3, 5, 8)
	sources := randomSources(rng, l.Total(), 6)
	enc, err := NewEncoder(PLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	s, err := NewStream(PLC, l, 6, &sink)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, src := range sources {
		want.Write(src)
	}
	prevDelivered := 0
	dist := PriorityDistribution{0.4, 0.3, 0.3}
	for !s.Complete() {
		blocks, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
		if s.Delivered() < prevDelivered {
			t.Fatal("delivery went backwards")
		}
		// The sink must always hold exactly the delivered prefix.
		if got := sink.Len(); got != s.Delivered()*6 {
			t.Fatalf("sink holds %d bytes, delivered %d blocks", got, s.Delivered())
		}
		prevDelivered = s.Delivered()
	}
	if !bytes.Equal(sink.Bytes(), want.Bytes()) {
		t.Fatal("sink content differs from the source stream")
	}
	if s.DeliveredLevels() != 3 {
		t.Errorf("DeliveredLevels = %d, want 3", s.DeliveredLevels())
	}
	if s.Received() == 0 {
		t.Error("Received not counted")
	}
}

// TestStreamPartialDelivery: with only level-0 blocks, exactly the level-0
// prefix is delivered.
func TestStreamPartialDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := mustLevels(t, 2, 6)
	sources := randomSources(rng, 8, 4)
	enc, err := NewEncoder(PLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	s, err := NewStream(PLC, l, 4, &sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // 4 level-0 blocks over 2 unknowns: decoded
		b, err := enc.Encode(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Delivered() != 2 || s.DeliveredLevels() != 1 {
		t.Fatalf("delivered %d blocks (%d levels), want 2 (1)", s.Delivered(), s.DeliveredLevels())
	}
	if !bytes.Equal(sink.Bytes(), append(append([]byte{}, sources[0]...), sources[1]...)) {
		t.Fatal("partial delivery content wrong")
	}
	if s.Complete() {
		t.Error("stream claims complete")
	}
}

type failingWriter struct{ calls int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("sink broken")
}

func TestStreamSinkErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := mustLevels(t, 1, 1)
	sources := randomSources(rng, 2, 2)
	enc, err := NewEncoder(PLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(PLC, l, 2, &failingWriter{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(b); err == nil {
		t.Error("sink failure not propagated")
	}
}

func TestStreamSLCPrefixSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := mustLevels(t, 2, 2)
	sources := randomSources(rng, 4, 2)
	enc, err := NewEncoder(SLC, l, sources)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	s, err := NewStream(SLC, l, 2, &sink)
	if err != nil {
		t.Fatal(err)
	}
	// Decode ONLY level 1: nothing may be delivered (strict prefix order).
	for i := 0; i < 5; i++ {
		b, err := enc.Encode(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Delivered() != 0 {
		t.Fatalf("delivered %d blocks without the level-0 prefix", s.Delivered())
	}
	// Now decode level 0: the whole stream flushes at once.
	for s.Delivered() < 4 {
		b, err := enc.Encode(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Complete() {
		t.Error("stream incomplete after both levels decoded")
	}
}
