package core

import "fmt"

// Coding selects how coefficient vectors are generated and represented
// for a stored object — the knob prlcfile and prlcd expose.
type Coding int

const (
	// CodingAuto defers the choice to AutoCoding at encode time.
	CodingAuto Coding = iota
	// CodingDense draws dense vectors over the full scheme support (the
	// classic PRLC generator, v1 wire frames).
	CodingDense
	// CodingSparse draws LogSparsity(N) nonzero positions per block (the
	// Dimakis-style O(ln N) generator, v3 pairs frames).
	CodingSparse
	// CodingBand draws a contiguous DefaultBandWidth band per block (the
	// perpetual-codes generator, v3 span frames).
	CodingBand
	// CodingChunked covers the object with overlapping chunks and codes
	// each chunk separately (expander chunked codes).
	CodingChunked
)

// Defaults for the generators the Coding values select. The auto
// thresholds follow the cost model: dense elimination is cubic in N, so
// it is only the right default while N is small; the sparse generator
// keeps decode cheap into the low thousands; beyond that only chunking
// keeps the per-byte cost flat.
const (
	DefaultBandWidth    = 64
	DefaultChunkSize    = 256
	DefaultChunkOverlap = 32

	autoDenseMax  = 256
	autoSparseMax = 1024
)

func (c Coding) String() string {
	switch c {
	case CodingAuto:
		return "auto"
	case CodingDense:
		return "dense"
	case CodingSparse:
		return "sparse"
	case CodingBand:
		return "band"
	case CodingChunked:
		return "chunked"
	default:
		return fmt.Sprintf("Coding(%d)", int(c))
	}
}

// ParseCoding parses a -coding flag value.
func ParseCoding(s string) (Coding, error) {
	switch s {
	case "auto":
		return CodingAuto, nil
	case "dense":
		return CodingDense, nil
	case "sparse":
		return CodingSparse, nil
	case "band":
		return CodingBand, nil
	case "chunked":
		return CodingChunked, nil
	default:
		return 0, fmt.Errorf("core: unknown coding %q (want auto, dense, sparse, band or chunked)", s)
	}
}

// AutoCoding resolves CodingAuto for a generation of n source blocks:
// dense up to 256, sparse up to 1024, chunked beyond.
func AutoCoding(n int) Coding {
	switch {
	case n <= autoDenseMax:
		return CodingDense
	case n <= autoSparseMax:
		return CodingSparse
	default:
		return CodingChunked
	}
}

// DefaultChunkLayout builds the chunk layout AutoCoding implies for n
// source blocks: DefaultChunkSize/DefaultChunkOverlap, clamped for small
// n (a single chunk when n fits in one).
func DefaultChunkLayout(n int) (*ChunkLayout, error) {
	size, overlap := DefaultChunkSize, DefaultChunkOverlap
	if size > n {
		size = n
		overlap = 0
	}
	return NewChunkLayout(n, size, overlap)
}
