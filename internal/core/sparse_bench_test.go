package core

import (
	"math/rand"
	"testing"

	"repro/internal/gfmat"
)

// Sparse/band/chunked decode benchmarks, captured by `make bench-sparse`
// into BENCH_sparse.json. Each benchmark decodes a deterministic
// full-rank block stream through the sparse-aware path (core.Decoder's
// AddSparse / ChunkedDecoder's global sparse elimination); its Ref twin
// feeds the identical stream, densified, through the structure-blind
// dense elimination (gfmat.Decoder.AddRef) — decode cost as it was
// before the sparse representation. Payloads are 64 B so elimination
// dominates, the regime the O(ln N) dissemination vectors live in. The
// Wire benchmarks report coefficient wire bytes per block via
// ReportMetric, pairing the v3 sparse frames against the dense v1
// encoding of the same vectors.

const sparseBenchPayload = 64

// sparseBenchStream draws blocks from a single-level RLC encoder with the
// given option until a trial decoder completes, so every benchmark replay
// is guaranteed full rank. The stream is deterministic per (n, opts).
func sparseBenchStream(b *testing.B, n int, opts ...EncoderOption) (*Levels, []*CodedBlock) {
	b.Helper()
	levels, err := NewLevels(n)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewEncoder(RLC, levels, benchSources(n, sparseBenchPayload), opts...)
	if err != nil {
		b.Fatal(err)
	}
	trial, err := NewDecoder(RLC, levels, sparseBenchPayload)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var blocks []*CodedBlock
	for !trial.Complete() {
		if len(blocks) > 8*n {
			b.Fatalf("stream did not reach full rank in %d blocks", len(blocks))
		}
		blk, err := enc.Encode(rng, 0)
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, blk)
		if _, err := trial.Add(blk); err != nil {
			b.Fatal(err)
		}
	}
	return levels, blocks
}

// chunkedBenchStream is the expander-chunked equivalent: round-robin
// chunk blocks until a trial decoder completes.
func chunkedBenchStream(b *testing.B, n, size, overlap int) (*ChunkLayout, []*CodedBlock) {
	b.Helper()
	layout, err := NewChunkLayout(n, size, overlap)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := NewChunkedEncoder(layout, benchSources(n, sparseBenchPayload))
	if err != nil {
		b.Fatal(err)
	}
	trial, err := NewChunkedDecoder(layout, sparseBenchPayload)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var blocks []*CodedBlock
	for i := 0; !trial.Complete(); i++ {
		if i > 8*n {
			b.Fatalf("chunk stream did not reach full rank in %d blocks", i)
		}
		blk, err := enc.EncodeChunk(rng, i%layout.Count)
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, blk)
		if _, err := trial.Add(blk); err != nil {
			b.Fatal(err)
		}
	}
	return layout, blocks
}

// densify returns the stream with every coefficient vector expanded, so
// the Ref baselines pay no densification cost inside the timed loop.
func densify(blocks []*CodedBlock) [][]byte {
	out := make([][]byte, len(blocks))
	for i, blk := range blocks {
		out[i] = blk.DenseCoeff()
	}
	return out
}

func benchmarkSparseDecode(b *testing.B, n int, opts ...EncoderOption) {
	levels, blocks := sparseBenchStream(b, n, opts...)
	b.SetBytes(int64(len(blocks)) * sparseBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(RLC, levels, sparseBenchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func benchmarkSparseDecodeRef(b *testing.B, n int, opts ...EncoderOption) {
	_, blocks := sparseBenchStream(b, n, opts...)
	dense := densify(blocks)
	b.SetBytes(int64(len(blocks)) * sparseBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := gfmat.NewDecoder(n, sparseBenchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for j := range blocks {
			if _, err := dec.AddRef(dense[j], blocks[j].Payload); err != nil {
				b.Fatal(err)
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func benchmarkChunkedDecode(b *testing.B, n, size, overlap int) {
	layout, blocks := chunkedBenchStream(b, n, size, overlap)
	b.SetBytes(int64(len(blocks)) * sparseBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewChunkedDecoder(layout, sparseBenchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := dec.Add(blk); err != nil {
				b.Fatal(err)
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func benchmarkChunkedDecodeRef(b *testing.B, n, size, overlap int) {
	_, blocks := chunkedBenchStream(b, n, size, overlap)
	dense := densify(blocks)
	b.SetBytes(int64(len(blocks)) * sparseBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := gfmat.NewDecoder(n, sparseBenchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for j := range blocks {
			if _, err := dec.AddRef(dense[j], blocks[j].Payload); err != nil {
				b.Fatal(err)
			}
		}
		if !dec.Complete() {
			b.Fatalf("decode incomplete: rank %d/%d", dec.Rank(), n)
		}
	}
}

func sparseOpts(n int) []EncoderOption { return []EncoderOption{WithSparsity(LogSparsity(n))} }
func bandOpts() []EncoderOption        { return []EncoderOption{WithBand(DefaultBandWidth)} }

func BenchmarkDecodeSparseN512(b *testing.B)     { benchmarkSparseDecode(b, 512, sparseOpts(512)...) }
func BenchmarkDecodeSparseN512Ref(b *testing.B)  { benchmarkSparseDecodeRef(b, 512, sparseOpts(512)...) }
func BenchmarkDecodeSparseN1024(b *testing.B)    { benchmarkSparseDecode(b, 1024, sparseOpts(1024)...) }
func BenchmarkDecodeSparseN1024Ref(b *testing.B) { benchmarkSparseDecodeRef(b, 1024, sparseOpts(1024)...) }
func BenchmarkDecodeSparseN2048(b *testing.B)    { benchmarkSparseDecode(b, 2048, sparseOpts(2048)...) }
func BenchmarkDecodeSparseN2048Ref(b *testing.B) { benchmarkSparseDecodeRef(b, 2048, sparseOpts(2048)...) }

func BenchmarkDecodeBandN512(b *testing.B)     { benchmarkSparseDecode(b, 512, bandOpts()...) }
func BenchmarkDecodeBandN512Ref(b *testing.B)  { benchmarkSparseDecodeRef(b, 512, bandOpts()...) }
func BenchmarkDecodeBandN1024(b *testing.B)    { benchmarkSparseDecode(b, 1024, bandOpts()...) }
func BenchmarkDecodeBandN1024Ref(b *testing.B) { benchmarkSparseDecodeRef(b, 1024, bandOpts()...) }
func BenchmarkDecodeBandN2048(b *testing.B)    { benchmarkSparseDecode(b, 2048, bandOpts()...) }
func BenchmarkDecodeBandN2048Ref(b *testing.B) { benchmarkSparseDecodeRef(b, 2048, bandOpts()...) }

func BenchmarkDecodeChunkedN512(b *testing.B)  { benchmarkChunkedDecode(b, 512, 128, 16) }
func BenchmarkDecodeChunkedN512Ref(b *testing.B) {
	benchmarkChunkedDecodeRef(b, 512, 128, 16)
}
func BenchmarkDecodeChunkedN1024(b *testing.B) { benchmarkChunkedDecode(b, 1024, 128, 16) }
func BenchmarkDecodeChunkedN1024Ref(b *testing.B) {
	benchmarkChunkedDecodeRef(b, 1024, 128, 16)
}
func BenchmarkDecodeChunkedN2048(b *testing.B) { benchmarkChunkedDecode(b, 2048, 128, 16) }
func BenchmarkDecodeChunkedN2048Ref(b *testing.B) {
	benchmarkChunkedDecodeRef(b, 2048, 128, 16)
}

// N=4096 has no Ref twin: the dense baseline's cubic elimination makes it
// impractically slow, which is itself the point of the sparse paths.
func BenchmarkDecodeChunkedN4096(b *testing.B) { benchmarkChunkedDecode(b, 4096, 256, 32) }

// benchmarkWire marshals the stream and reports the mean coefficient wire
// bytes per block — payloads are excluded so the metric isolates what the
// v3 encoding saves.
func benchmarkWire(b *testing.B, blocks []*CodedBlock) {
	var coeffBytes int
	for _, blk := range blocks {
		coeffBytes += blk.WireSize() - len(blk.Payload)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range blocks {
			if _, err := blk.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(coeffBytes)/float64(len(blocks)), "wire-B/block")
}

func BenchmarkWireSparseN1024(b *testing.B) {
	_, blocks := sparseBenchStream(b, 1024, sparseOpts(1024)...)
	benchmarkWire(b, blocks)
}

// The Ref twin marshals the same vectors densified: the v1 dense frames a
// pre-sparse writer would ship.
func BenchmarkWireSparseN1024Ref(b *testing.B) {
	_, blocks := sparseBenchStream(b, 1024, sparseOpts(1024)...)
	dense := make([]*CodedBlock, len(blocks))
	for i, blk := range blocks {
		dense[i] = &CodedBlock{Level: blk.Level, Coeff: blk.DenseCoeff(), Payload: blk.Payload}
	}
	benchmarkWire(b, dense)
}

func BenchmarkWireChunkedN1024(b *testing.B) {
	_, blocks := chunkedBenchStream(b, 1024, 128, 16)
	benchmarkWire(b, blocks)
}
