package core

import (
	"time"

	"repro/internal/metrics"
)

// This file is the coding layer's metrics seam. Instrumentation is
// strictly opt-in via SetMetrics; an encoder or decoder that never sees a
// registry carries all-nil metric fields and pays a single nil check per
// operation. The name catalog lives in DESIGN.md §10.

type encoderMetrics struct {
	blocks   *metrics.Counter
	bytes    *metrics.Counter
	encodeNs *metrics.Histogram
}

// SetMetrics attaches the encoder to a registry. Pass nil to detach.
// Not safe to call concurrently with Encode.
func (e *Encoder) SetMetrics(r *metrics.Registry) {
	if r == nil {
		e.met = encoderMetrics{}
		return
	}
	e.met = encoderMetrics{
		blocks:   r.Counter("core_encode_blocks_total"),
		bytes:    r.Counter("core_encode_bytes_total"),
		encodeNs: r.Histogram("core_encode_ns"),
	}
}

type decoderMetrics struct {
	blocks     *metrics.Counter
	innovative *metrics.Counter
	rejected   *metrics.Counter
	addNs      *metrics.Histogram

	solvedRows    *metrics.Gauge
	levelsDecoded *metrics.Gauge
	levelReady    []*metrics.Histogram // indexed by level

	start      time.Time // when SetMetrics attached; level-ready times are relative to it
	readyLevel int       // levels [0, readyLevel) already reported ready
	sample     uint64    // Add counter driving 1-in-addSampleEvery latency sampling
}

// addSampleEvery is the per-Add latency sampling stride (power of two).
const addSampleEvery = 8

// SetMetrics attaches the decoder to a registry: every Add updates block
// and innovativeness counters, per-Add latency, and solved-row progress,
// and the first time each consecutive level becomes fully decoded the
// elapsed time since attachment lands in core_decode_level_ready_ns — the
// paper's progressive-decoding claim as a measured series. Pass nil to
// detach. Not safe to call concurrently with Add.
func (d *Decoder) SetMetrics(r *metrics.Registry) {
	if r == nil {
		d.met = decoderMetrics{}
		return
	}
	m := decoderMetrics{
		blocks:        r.Counter("core_decode_blocks_total"),
		innovative:    r.Counter("core_decode_innovative_total"),
		rejected:      r.Counter("core_decode_rejected_total"),
		addNs:         r.Histogram("core_decode_add_ns"),
		solvedRows:    r.Gauge("core_decode_solved_rows"),
		levelsDecoded: r.Gauge("core_decode_levels_decoded"),
		levelReady:    make([]*metrics.Histogram, d.levels.Count()),
		start:         time.Now(),
	}
	for k := range m.levelReady {
		m.levelReady[k] = r.Histogram(levelReadyName(k))
	}
	d.met = m
}

// levelReadyName builds core_decode_level_ready_ns{level="k"} without
// fmt, since SetMetrics may run in level-count loops inside experiments.
func levelReadyName(k int) string {
	digits := [20]byte{}
	i := len(digits)
	n := k
	if n == 0 {
		i--
		digits[i] = '0'
	}
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	return `core_decode_level_ready_ns{level="` + string(digits[i:]) + `"}`
}

// recordAdd updates decode progress after one (instrumented) Add; timed
// marks the sampled Adds that feed the latency histogram.
func (d *Decoder) recordAdd(t0 time.Time, timed bool, innovative bool, err error) {
	if timed {
		d.met.addNs.ObserveSince(t0)
	}
	d.met.blocks.Inc()
	switch {
	case err != nil:
		d.met.rejected.Inc()
	case innovative:
		d.met.innovative.Inc()
	}
	d.met.solvedRows.Set(int64(d.DecodedBlocks()))
	for d.met.readyLevel < len(d.met.levelReady) && d.LevelDecoded(d.met.readyLevel) {
		d.met.levelReady[d.met.readyLevel].Observe(int64(time.Since(d.met.start)))
		d.met.readyLevel++
	}
	d.met.levelsDecoded.Set(int64(d.met.readyLevel))
}
