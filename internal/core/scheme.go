package core

import (
	"fmt"

	"repro/internal/dist"
)

// Scheme selects one of the coding schemes analyzed in the paper.
type Scheme int

const (
	// RLC is the baseline Random Linear Code: every coded block combines
	// all N source blocks (Fig. 1a). All-or-nothing decoding.
	RLC Scheme = iota + 1
	// SLC is the Stacked Linear Code: a level-k coded block combines only
	// the source blocks of level k (Fig. 1b). Levels decode independently.
	SLC
	// PLC is the Progressive Linear Code: a level-k coded block combines
	// all source blocks of levels 0..k (Fig. 1c). Decoding is progressive
	// in priority order.
	PLC
)

// String returns the scheme's conventional name.
func (s Scheme) String() string {
	switch s {
	case RLC:
		return "RLC"
	case SLC:
		return "SLC"
	case PLC:
		return "PLC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is a known scheme.
func (s Scheme) Valid() bool { return s == RLC || s == SLC || s == PLC }

// ParseScheme converts a case-sensitive scheme name to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "RLC", "rlc":
		return RLC, nil
	case "SLC", "slc":
		return SLC, nil
	case "PLC", "plc":
		return PLC, nil
	default:
		return 0, fmt.Errorf("core: unknown scheme %q (want RLC, SLC or PLC)", name)
	}
}

// Support returns the half-open source-block index range [lo, hi) that a
// coded block of the given level combines under scheme s:
//
//	RLC: [0, N)              regardless of level
//	SLC: [b_{k-1}, b_k)      the level's own blocks
//	PLC: [0, b_k)            all blocks of levels 0..k
func (s Scheme) Support(l *Levels, level int) (lo, hi int, err error) {
	if err := l.ValidLevel(level); err != nil {
		return 0, 0, err
	}
	switch s {
	case RLC:
		return 0, l.Total(), nil
	case SLC:
		lo, hi = l.Span(level)
		return lo, hi, nil
	case PLC:
		return 0, l.CumSize(level), nil
	default:
		return 0, 0, fmt.Errorf("core: invalid scheme %v", s)
	}
}

// PriorityDistribution assigns to each level the fraction of coded blocks
// carrying that level — the quantity the Sec. 3.4 feasibility problem
// designs. Index i is level i's share p_{i+1} in the paper's notation.
type PriorityDistribution []float64

// NewUniformDistribution returns the uniform priority distribution over n
// levels, the paper's default and the feasibility solver's starting point.
func NewUniformDistribution(n int) PriorityDistribution {
	return PriorityDistribution(dist.Uniform(n))
}

// Validate checks that the distribution is a probability vector matching
// the level structure.
func (p PriorityDistribution) Validate(l *Levels) error {
	if len(p) != l.Count() {
		return fmt.Errorf("core: distribution has %d entries, want %d levels", len(p), l.Count())
	}
	if err := dist.Simplex(p, 1e-9); err != nil {
		return fmt.Errorf("core: invalid priority distribution: %w", err)
	}
	return nil
}

// Clone returns a copy of the distribution.
func (p PriorityDistribution) Clone() PriorityDistribution {
	out := make(PriorityDistribution, len(p))
	copy(out, p)
	return out
}
