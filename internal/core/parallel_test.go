package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func testSources(t *testing.T, n, payloadLen int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, payloadLen)
		rng.Read(out[i])
	}
	return out
}

func testEncoder(t *testing.T, scheme Scheme, sizes []int, payloadLen int, opts ...EncoderOption) *Encoder {
	t.Helper()
	levels, err := NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	var sources [][]byte
	if payloadLen > 0 {
		sources = testSources(t, levels.Total(), payloadLen, 99)
	}
	enc, err := NewEncoder(scheme, levels, sources, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestParallelEncodeBatchDeterministic pins the headline guarantee: for a
// fixed seed the batch is bit-identical whatever the worker count.
func TestParallelEncodeBatchDeterministic(t *testing.T) {
	for _, scheme := range []Scheme{RLC, SLC, PLC} {
		enc := testEncoder(t, scheme, []int{4, 8, 12}, 256)
		p := NewUniformDistribution(3)
		var want []*CodedBlock
		for _, workers := range []int{1, 2, 3, 4, 7} {
			pe, err := NewParallelEncoder(enc, workers)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pe.EncodeBatch(12345, p, 40)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: EncodeBatch with %d workers differs from 1 worker", scheme, workers)
			}
		}
	}
}

// TestParallelEncodeBatchSparseDeterministic repeats the determinism check
// with the sparse O(ln N) coefficient variant, whose per-block random
// consumption is irregular (Perm + Intn).
func TestParallelEncodeBatchSparseDeterministic(t *testing.T) {
	enc := testEncoder(t, PLC, []int{8, 8, 16}, 128, WithSparsity(LogSparsity(32)))
	p := NewUniformDistribution(3)
	pe1, _ := NewParallelEncoder(enc, 1)
	pe4, _ := NewParallelEncoder(enc, 4)
	a, err := pe1.EncodeBatch(777, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pe4.EncodeBatch(777, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sparse EncodeBatch differs across worker counts")
	}
}

// TestParallelEncodeMatchesSequential verifies the striped single-block
// path is bit-identical to Encoder.Encode from the same generator state,
// using a payload big enough to cross the striping threshold.
func TestParallelEncodeMatchesSequential(t *testing.T) {
	enc := testEncoder(t, PLC, []int{2, 3, 3}, 3*stripeMinBytes+123)
	pe, err := NewParallelEncoder(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level < 3; level++ {
		seq, err := enc.Encode(rand.New(rand.NewSource(5)), level)
		if err != nil {
			t.Fatal(err)
		}
		par, err := pe.Encode(rand.New(rand.NewSource(5)), level)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Coeff, par.Coeff) {
			t.Fatalf("level %d: striped Encode drew different coefficients", level)
		}
		if !bytes.Equal(seq.Payload, par.Payload) {
			t.Fatalf("level %d: striped Encode produced different payload", level)
		}
	}
}

// TestParallelEncodeBatchDecodes runs the full loop: parallel-encoded
// blocks must decode back to the sources.
func TestParallelEncodeBatchDecodes(t *testing.T) {
	enc := testEncoder(t, PLC, []int{4, 6, 6}, 64)
	pe, err := NewParallelEncoder(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := pe.EncodeBatch(31337, NewUniformDistribution(3), 80)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(PLC, enc.Levels(), enc.PayloadLen())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := dec.Add(b); err != nil {
			t.Fatal(err)
		}
		if dec.Complete() {
			break
		}
	}
	if !dec.Complete() {
		t.Fatalf("decoder incomplete: rank %d/%d after %d blocks", dec.Rank(), enc.Levels().Total(), len(blocks))
	}
	for i := 0; i < enc.Levels().Total(); i++ {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, enc.sources[i]) {
			t.Fatalf("source %d decoded incorrectly", i)
		}
	}
}

// TestParallelEncoderCoefficientOnly covers payloadLen == 0 (Monte-Carlo
// mode): batches still generate and stay deterministic.
func TestParallelEncoderCoefficientOnly(t *testing.T) {
	levels, err := NewLevels(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(SLC, levels, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelEncoder(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pe.EncodeBatch(1, NewUniformDistribution(2), 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pe.EncodeBatch(1, NewUniformDistribution(2), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("coefficient-only EncodeBatch not reproducible")
	}
	for _, blk := range a {
		if blk.Payload == nil || len(blk.Payload) != 0 {
			t.Fatal("coefficient-only block should carry empty non-nil payload")
		}
	}
}

// TestCodedBlockCloneEmptiness pins the satellite fix: Clone must preserve
// nil-ness and emptiness instead of collapsing empty slices to nil.
func TestCodedBlockCloneEmptiness(t *testing.T) {
	empty := &CodedBlock{Level: 1, Coeff: []byte{}, Payload: []byte{}}
	c := empty.Clone()
	if c.Coeff == nil || c.Payload == nil {
		t.Fatal("Clone turned empty non-nil slices into nil")
	}
	if !reflect.DeepEqual(empty, c) {
		t.Fatal("Clone of empty-slice block is not DeepEqual to the original")
	}

	nilBlock := &CodedBlock{Level: 2}
	c = nilBlock.Clone()
	if c.Coeff != nil || c.Payload != nil {
		t.Fatal("Clone materialized nil slices")
	}
	if !reflect.DeepEqual(nilBlock, c) {
		t.Fatal("Clone of nil-slice block is not DeepEqual to the original")
	}

	full := &CodedBlock{Level: 0, Coeff: []byte{1, 2}, Payload: []byte{3}}
	c = full.Clone()
	if !reflect.DeepEqual(full, c) {
		t.Fatal("Clone of populated block is not DeepEqual")
	}
	c.Coeff[0] = 9
	c.Payload[0] = 9
	if full.Coeff[0] == 9 || full.Payload[0] == 9 {
		t.Fatal("Clone aliases the original's storage")
	}
}
