package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/gf256"
	"repro/internal/gfmat"
)

// ErrDegenerateInputs reports that a recombination sample spans nothing:
// every input coefficient vector is zero, so no combination of them can
// carry information. RecombineRanked wraps it so repair loops can skip
// such samples with errors.Is instead of inspecting ranks.
var ErrDegenerateInputs = errors.New("core: recombination inputs span no information")

// Recombine produces a fresh coded block as a random GF(2^8) linear
// combination of the given blocks — the regeneration primitive of the
// distributed-storage line of related work (Dimakis et al.): redundancy
// lost to node failures is restored from surviving *coded* blocks,
// without ever reconstructing a source block.
//
// Because every input is a valid combination of source blocks, any linear
// combination of the inputs is too, so the output decodes exactly like a
// freshly encoded block. Compatibility rules follow the schemes'
// supports:
//
//   - SLC: all inputs must carry the same level (levels are coded over
//     disjoint supports); the output keeps that level.
//   - PLC: inputs may mix levels; the output level is the maximum input
//     level, whose support [0, b_max) is the union of the input spans.
//   - RLC: any mix; the output level is the maximum input level.
//
// Blocks whose coefficient vectors violate their own scheme support, or
// whose dimensions (coefficient or payload length) disagree, are
// rejected — mixing blocks of different codes corrupts the store.
//
// The combination weights are drawn uniformly from the nonzero field
// elements. A draw whose output coefficient vector cancels to zero is
// redrawn a few times (possible only for linearly dependent inputs), so
// a non-degenerate sample practically never yields a useless block.
func Recombine(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock) (*CodedBlock, error) {
	out, _, err := recombine(rng, scheme, levels, blocks, false)
	return out, err
}

// RecombineRanked is Recombine plus a rank report: it also returns the
// GF(2^8) rank of the input coefficient matrix — the dimension of the
// span fresh combinations are drawn from. A sample of rank r can
// contribute at most r linearly independent regenerated blocks; callers
// regenerating more should enlarge or re-draw the sample. A rank-0
// sample (all-zero inputs) fails with ErrDegenerateInputs.
//
// The rank costs one small elimination over the sample's coefficient
// vectors only — payloads are never touched, and nothing is decoded.
func RecombineRanked(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock) (*CodedBlock, int, error) {
	return recombine(rng, scheme, levels, blocks, true)
}

func recombine(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock, ranked bool) (*CodedBlock, int, error) {
	if !scheme.Valid() {
		return nil, 0, fmt.Errorf("core: invalid scheme %v", scheme)
	}
	if levels == nil {
		return nil, 0, fmt.Errorf("core: nil levels")
	}
	if len(blocks) == 0 {
		return nil, 0, fmt.Errorf("core: recombine needs at least one block")
	}
	n := levels.Total()
	payloadLen := len(blocks[0].Payload)
	outLevel := blocks[0].Level
	outObject := blocks[0].Object
	for i, b := range blocks {
		if b == nil {
			return nil, 0, fmt.Errorf("core: recombine input %d is nil", i)
		}
		if b.Object != outObject {
			return nil, 0, fmt.Errorf("core: recombine input %d belongs to %s, want %s (mixed objects corrupt both)",
				i, b.Object, outObject)
		}
		if b.CoeffLen() != n {
			return nil, 0, fmt.Errorf("core: recombine input %d has %d coefficients, want %d (mixed dimensions?)",
				i, b.CoeffLen(), n)
		}
		if len(b.Payload) != payloadLen {
			return nil, 0, fmt.Errorf("core: recombine input %d has %d payload bytes, want %d",
				i, len(b.Payload), payloadLen)
		}
		lo, hi, err := scheme.Support(levels, b.Level)
		if err != nil {
			return nil, 0, err
		}
		if sp := b.SpCoeff; sp != nil {
			// Canonical-form validation makes the scatter accumulation below
			// safe; the support check is then O(nnz).
			if err := sp.Validate(); err != nil {
				return nil, 0, fmt.Errorf("core: recombine input %d: %w", i, err)
			}
			if slo, shi := sp.Support(); sp.NNZ() > 0 && (slo < lo || shi > hi) {
				return nil, 0, fmt.Errorf("core: recombine input %d: %v level-%d block has nonzero coefficients in [%d, %d) outside support [%d, %d) (mixed schemes?)",
					i, scheme, b.Level, slo, shi, lo, hi)
			}
		} else {
			for j, c := range b.Coeff {
				if c != 0 && (j < lo || j >= hi) {
					return nil, 0, fmt.Errorf("core: recombine input %d: %v level-%d block has nonzero coefficient at column %d outside support [%d, %d) (mixed schemes?)",
						i, scheme, b.Level, j, lo, hi)
				}
			}
		}
		if scheme == SLC && b.Level != outLevel {
			return nil, 0, fmt.Errorf("core: SLC recombine mixes level %d with level %d (levels are coded over disjoint supports)",
				outLevel, b.Level)
		}
		if b.Level > outLevel {
			outLevel = b.Level
		}
	}
	rank := len(blocks)
	if ranked {
		rows := make([][]byte, len(blocks))
		for i, b := range blocks {
			rows[i] = b.DenseCoeff()
		}
		m, err := gfmat.FromRows(rows)
		if err != nil {
			return nil, 0, fmt.Errorf("core: recombine rank: %w", err)
		}
		rank = m.Rank()
		if rank == 0 {
			return nil, 0, fmt.Errorf("%w: %d all-zero inputs", ErrDegenerateInputs, len(blocks))
		}
	}
	out := &CodedBlock{
		Object:  outObject,
		Level:   outLevel,
		Coeff:   make([]byte, n),
		Payload: make([]byte, payloadLen),
	}
	// A zero output is only possible when the weighted inputs cancel,
	// which requires linear dependence; a redraw resolves it except for
	// the truly degenerate all-zero sample.
	for attempt := 0; ; attempt++ {
		for _, b := range blocks {
			w := byte(1 + rng.Intn(255))
			if sp := b.SpCoeff; sp != nil {
				gf256.AddMulAt(out.Coeff, sp.Idx, sp.Val, w)
			} else {
				gf256.AddMulSlice(out.Coeff, b.Coeff, w)
			}
			if payloadLen > 0 {
				gf256.AddMulSlice(out.Payload, b.Payload, w)
			}
		}
		if !gf256.IsZero(out.Coeff) || attempt >= 3 {
			break
		}
		for i := range out.Coeff {
			out.Coeff[i] = 0
		}
		for i := range out.Payload {
			out.Payload[i] = 0
		}
	}
	return out, rank, nil
}
