package core

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func mustLevels(t testing.TB, sizes ...int) *Levels {
	t.Helper()
	l, err := NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLevelsValidation(t *testing.T) {
	if _, err := NewLevels(); err == nil {
		t.Error("NewLevels() with no sizes succeeded, want error")
	}
	if _, err := NewLevels(1, 0, 2); err == nil {
		t.Error("zero-size level accepted")
	}
	if _, err := NewLevels(-3); err == nil {
		t.Error("negative-size level accepted")
	}
}

func TestLevelsAccessors(t *testing.T) {
	l := mustLevels(t, 50, 100, 350) // the Sec. 5.3 structure
	if got := l.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := l.Total(); got != 500 {
		t.Errorf("Total = %d, want 500", got)
	}
	wantCum := []int{50, 150, 500}
	for i, w := range wantCum {
		if got := l.CumSize(i); got != w {
			t.Errorf("CumSize(%d) = %d, want %d", i, got, w)
		}
	}
	if lo, hi := l.Span(0); lo != 0 || hi != 50 {
		t.Errorf("Span(0) = [%d, %d), want [0, 50)", lo, hi)
	}
	if lo, hi := l.Span(2); lo != 150 || hi != 500 {
		t.Errorf("Span(2) = [%d, %d), want [150, 500)", lo, hi)
	}
}

func TestSizesIsACopy(t *testing.T) {
	l := mustLevels(t, 1, 2)
	s := l.Sizes()
	s[0] = 99
	if l.Size(0) != 1 {
		t.Error("Sizes() leaked internal storage")
	}
}

func TestLevelOf(t *testing.T) {
	l := mustLevels(t, 50, 100, 350)
	cases := []struct{ block, want int }{
		{0, 0}, {49, 0}, {50, 1}, {149, 1}, {150, 2}, {499, 2},
	}
	for _, tc := range cases {
		got, err := l.LevelOf(tc.block)
		if err != nil {
			t.Fatalf("LevelOf(%d): %v", tc.block, err)
		}
		if got != tc.want {
			t.Errorf("LevelOf(%d) = %d, want %d", tc.block, got, tc.want)
		}
	}
	if _, err := l.LevelOf(-1); err == nil {
		t.Error("LevelOf(-1) succeeded, want error")
	}
	if _, err := l.LevelOf(500); err == nil {
		t.Error("LevelOf(Total) succeeded, want error")
	}
}

func TestPrefixLevels(t *testing.T) {
	l := mustLevels(t, 50, 100, 350)
	cases := []struct{ prefix, want int }{
		{0, 0}, {49, 0}, {50, 1}, {149, 1}, {150, 2}, {499, 2}, {500, 3},
	}
	for _, tc := range cases {
		if got := l.PrefixLevels(tc.prefix); got != tc.want {
			t.Errorf("PrefixLevels(%d) = %d, want %d", tc.prefix, got, tc.want)
		}
	}
}

func TestUniformLevels(t *testing.T) {
	l, err := UniformLevels(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 5 || l.Total() != 1000 {
		t.Errorf("UniformLevels(5, 200) = %v", l)
	}
	if _, err := UniformLevels(0, 5); err == nil {
		t.Error("UniformLevels(0, 5) succeeded, want error")
	}
	if _, err := UniformLevels(5, 0); err == nil {
		t.Error("UniformLevels(5, 0) succeeded, want error")
	}
}

func TestValidLevel(t *testing.T) {
	l := mustLevels(t, 3, 3)
	if err := l.ValidLevel(0); err != nil {
		t.Errorf("ValidLevel(0): %v", err)
	}
	if err := l.ValidLevel(1); err != nil {
		t.Errorf("ValidLevel(1): %v", err)
	}
	if err := l.ValidLevel(2); err == nil {
		t.Error("ValidLevel(2) succeeded, want error")
	}
	if err := l.ValidLevel(-1); err == nil {
		t.Error("ValidLevel(-1) succeeded, want error")
	}
}

func TestQuickLevelOfConsistentWithSpan(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(20)
		}
		l, err := NewLevels(sizes...)
		if err != nil {
			return false
		}
		b := rng.Intn(l.Total())
		k, err := l.LevelOf(b)
		if err != nil {
			return false
		}
		lo, hi := l.Span(k)
		return lo <= b && b < hi
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestLevelsString(t *testing.T) {
	l := mustLevels(t, 1, 2)
	if got := l.String(); got != "Levels{n=2, N=3, sizes=[1 2]}" {
		t.Errorf("String() = %q", got)
	}
}
