package core

import (
	"fmt"

	"repro/internal/gf256"
)

// SparseCoeff is a coefficient vector in canonical sparse form: the dense
// length plus the strictly increasing positions of its nonzero entries and
// their values. It is the representation predist's O(ln N) dissemination
// vectors and the perpetual-style band generator produce, the v3 wire
// encoding ships, and gfmat.Decoder.AddSparse consumes — end to end
// without ever materializing the dense vector on the hot path.
//
// Canonical means: Idx strictly increasing, every Idx < Len, len(Idx) ==
// len(Val), and every Val nonzero. All producers in this package emit
// canonical vectors; Validate checks the invariant for vectors arriving
// from outside.
type SparseCoeff struct {
	Len int      // dense vector length (the generation size)
	Idx []uint32 // strictly increasing positions of nonzero entries
	Val []byte   // values at those positions, all nonzero
}

// SparsifyCoeff converts a dense coefficient vector to canonical sparse
// form.
func SparsifyCoeff(dense []byte) *SparseCoeff {
	s := &SparseCoeff{Len: len(dense)}
	nnz := 0
	for _, v := range dense {
		if v != 0 {
			nnz++
		}
	}
	if nnz > 0 {
		s.Idx = make([]uint32, 0, nnz)
		s.Val = make([]byte, 0, nnz)
		for j, v := range dense {
			if v != 0 {
				s.Idx = append(s.Idx, uint32(j))
				s.Val = append(s.Val, v)
			}
		}
	}
	return s
}

// Validate checks the canonical-form invariant.
func (s *SparseCoeff) Validate() error {
	if s.Len < 0 {
		return fmt.Errorf("core: sparse coeff: negative length %d", s.Len)
	}
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("core: sparse coeff: %d indices with %d values", len(s.Idx), len(s.Val))
	}
	prev := -1
	for i, j := range s.Idx {
		if int(j) <= prev || int(j) >= s.Len {
			return fmt.Errorf("core: sparse coeff: index %d (after %d) outside strictly increasing [0, %d)", j, prev, s.Len)
		}
		if s.Val[i] == 0 {
			return fmt.Errorf("core: sparse coeff: zero value at index %d", j)
		}
		prev = int(j)
	}
	return nil
}

// NNZ returns the number of nonzero entries.
func (s *SparseCoeff) NNZ() int { return len(s.Idx) }

// Support returns the tight support [lo, hi) of the vector — for a
// canonical vector, Idx[0] and Idx[last]+1. The zero vector has support
// [0, 0).
func (s *SparseCoeff) Support() (lo, hi int) {
	if len(s.Idx) == 0 {
		return 0, 0
	}
	return int(s.Idx[0]), int(s.Idx[len(s.Idx)-1]) + 1
}

// Dense materializes the dense coefficient vector. The result is a fresh
// slice — intended for oracles, rank computations and tests, not the hot
// path.
func (s *SparseCoeff) Dense() []byte {
	out := make([]byte, s.Len)
	gf256.ScatterAt(out, s.Idx, s.Val)
	return out
}

// Clone returns a deep copy.
func (s *SparseCoeff) Clone() *SparseCoeff {
	c := &SparseCoeff{Len: s.Len}
	if s.Idx != nil {
		c.Idx = append([]uint32(nil), s.Idx...)
	}
	if s.Val != nil {
		c.Val = append([]byte(nil), s.Val...)
	}
	return c
}
