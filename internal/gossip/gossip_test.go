package gossip

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/geom"
)

func connectedGraph(t testing.TB, seed int64, n int, radius float64) *geom.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for {
		pos := geom.RandomPoints(rng, n)
		g, err := geom.NewUnitDiskGraph(pos, radius)
		if err != nil {
			t.Fatal(err)
		}
		if g.Connected() {
			return g
		}
	}
}

func mustLevels(t testing.TB, sizes ...int) *core.Levels {
	t.Helper()
	l, err := core.NewLevels(sizes...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewWalkerValidation(t *testing.T) {
	if _, err := NewWalker(nil, 0); err == nil {
		t.Error("nil graph accepted")
	}
	g := connectedGraph(t, 1, 30, 0.35)
	if _, err := NewWalker(g, -1); err == nil {
		t.Error("negative steps accepted")
	}
	w, err := NewWalker(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Steps() != 4*30 {
		t.Errorf("default steps = %d, want %d", w.Steps(), 120)
	}
	if w.NumNodes() != 30 {
		t.Errorf("NumNodes = %d", w.NumNodes())
	}
}

func TestWalkValidation(t *testing.T) {
	g := connectedGraph(t, 2, 30, 0.35)
	w, err := NewWalker(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, _, err := w.Walk(rng, -1, nil); err == nil {
		t.Error("negative origin accepted")
	}
	if _, _, err := w.Walk(rng, 99, nil); err == nil {
		t.Error("out-of-range origin accepted")
	}
	alive := make([]bool, 30)
	if err := w.SetAlive(alive); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Walk(rng, 0, nil); err == nil {
		t.Error("dead origin accepted")
	}
	if err := w.SetAlive(make([]bool, 5)); err == nil {
		t.Error("wrong-length alive vector accepted")
	}
}

// TestWalkStationaryIsUniform is the Metropolis–Hastings property: the
// terminal-node distribution over many walks must be near-uniform even on
// an irregular-degree graph.
func TestWalkStationaryIsUniform(t *testing.T) {
	g := connectedGraph(t, 4, 60, 0.25)
	w, err := NewWalker(g, 300)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const walks = 12000
	counts := make([]int, g.Len())
	for i := 0; i < walks; i++ {
		node, _, err := w.Walk(rng, rng.Intn(g.Len()), nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[node]++
	}
	want := float64(walks) / float64(g.Len()) // 200 per node
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.5 {
			t.Errorf("node %d (degree %d) visited %d times, want ~%.0f",
				i, g.Degree(i), c, want)
		}
	}
}

func TestWalkAvoidsDeadNodes(t *testing.T) {
	g := connectedGraph(t, 6, 60, 0.3)
	w, err := NewWalker(g, 200)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	alive := make([]bool, g.Len())
	for i := range alive {
		alive[i] = i%3 != 0
	}
	alive[1] = true
	if err := w.SetAlive(alive); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		node, _, err := w.Walk(rng, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !alive[node] {
			t.Fatalf("walk terminated on dead node %d", node)
		}
	}
	if w.Alive(0) || !w.Alive(1) || w.Alive(-1) {
		t.Error("Alive accessor misbehaves")
	}
}

func TestWalkAcceptFilter(t *testing.T) {
	g := connectedGraph(t, 8, 40, 0.3)
	w, err := NewWalker(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Only even nodes acceptable.
	for trial := 0; trial < 30; trial++ {
		node, _, err := w.Walk(rng, 0, func(n int) bool { return n%2 == 0 })
		if err != nil {
			t.Fatal(err)
		}
		if node%2 != 0 {
			t.Fatalf("walk accepted odd node %d", node)
		}
	}
	// An unsatisfiable filter errors out instead of looping forever.
	if _, _, err := w.Walk(rng, 0, func(int) bool { return false }); err == nil {
		t.Error("unsatisfiable filter succeeded")
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	g := connectedGraph(t, 10, 30, 0.35)
	w, err := NewWalker(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLevels(t, 2, 4)
	good := Config{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2)}
	if _, err := NewDeployment(w, good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Scheme: core.PLC, Dist: core.NewUniformDistribution(2)},
		{Scheme: core.Scheme(0), Levels: l, Dist: core.NewUniformDistribution(2)},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(3)},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), Fanout: -1},
		{Scheme: core.PLC, Levels: l, Dist: core.NewUniformDistribution(2), PayloadLen: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDeployment(w, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewDeployment(nil, good); err == nil {
		t.Error("nil walker accepted")
	}
}

func TestPartAssignmentCommonSeed(t *testing.T) {
	g := connectedGraph(t, 11, 50, 0.3)
	w, err := NewWalker(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLevels(t, 2, 4)
	cfg := Config{Scheme: core.PLC, Levels: l, Dist: core.PriorityDistribution{0.3, 0.7}, Seed: 42}
	a, err := NewDeployment(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDeployment(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for i := 0; i < 50; i++ {
		if a.PartOf(i) != b.PartOf(i) {
			t.Fatal("same seed produced different part assignments")
		}
		if a.PartOf(i) == 0 {
			count0++
		}
	}
	if count0 != 15 { // 0.3 * 50
		t.Errorf("part 0 has %d nodes, want 15", count0)
	}
}

// TestGossipEndToEnd runs the full gossip pipeline: disseminate with
// random walks, kill nodes, collect, verify priority-ordered recovery and
// payload fidelity.
func TestGossipEndToEnd(t *testing.T) {
	g := connectedGraph(t, 12, 120, 0.2)
	w, err := NewWalker(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLevels(t, 4, 8, 12) // N = 24
	rng := rand.New(rand.NewSource(13))
	d, err := NewDeployment(w, Config{
		Scheme: core.PLC, Levels: l,
		Dist: core.PriorityDistribution{0.4, 0.3, 0.3},
		Seed: 14, Fanout: 40, PayloadLen: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sources := make([][]byte, l.Total())
	for i := range sources {
		sources[i] = make([]byte, 8)
		rng.Read(sources[i])
		if err := d.Disseminate(rng, rng.Intn(120), i, sources[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Walks != 40*l.Total() || st.Hops == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Full collection decodes everything.
	res, dec, err := collect.Run(rng, core.PLC, l, d.CodedBlocks(nil), collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("gossip deployment incomplete: %+v", res)
	}
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, sources[i]) {
			t.Fatalf("source %d corrupted", i)
		}
	}

	// Under 50% failures, the critical level still survives.
	dead := make(map[int]bool)
	for i := 0; i < 120; i++ {
		if rng.Float64() < 0.5 {
			dead[i] = true
		}
	}
	res, _, err = collect.Run(rng, core.PLC, l,
		d.CodedBlocks(func(n int) bool { return !dead[n] }), collect.Options{PayloadLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Errorf("critical level lost under 50%% failures: %+v", res)
	}
}

// TestGossipSupportInvariant: gossip caches must respect the scheme's
// coefficient support, enforced by core.Decoder.
func TestGossipSupportInvariant(t *testing.T) {
	g := connectedGraph(t, 15, 60, 0.3)
	w, err := NewWalker(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLevels(t, 3, 3, 3)
	for _, scheme := range []core.Scheme{core.RLC, core.SLC, core.PLC} {
		rng := rand.New(rand.NewSource(16))
		d, err := NewDeployment(w, Config{
			Scheme: scheme, Levels: l, Dist: core.NewUniformDistribution(3),
			Seed: 17, Fanout: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < l.Total(); i++ {
			if err := d.Disseminate(rng, rng.Intn(60), i, nil); err != nil {
				t.Fatal(err)
			}
		}
		dec, err := core.NewDecoder(scheme, l, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range d.CodedBlocks(nil) {
			if _, err := dec.Add(b); err != nil {
				t.Fatalf("%v: gossip cache violates support: %v", scheme, err)
			}
		}
	}
}

func TestDisseminateValidation(t *testing.T) {
	g := connectedGraph(t, 18, 30, 0.35)
	w, err := NewWalker(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLevels(t, 1, 1)
	d, err := NewDeployment(w, Config{
		Scheme: core.SLC, Levels: l, Dist: core.NewUniformDistribution(2),
		PayloadLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	if err := d.Disseminate(rng, 0, 5, []byte{1, 2}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := d.Disseminate(rng, 0, 0, []byte{1}); err == nil {
		t.Error("short payload accepted")
	}
}

func BenchmarkWalk(b *testing.B) {
	g := connectedGraph(b, 20, 200, 0.15)
	w, err := NewWalker(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Walk(rng, rng.Intn(200), nil); err != nil {
			b.Fatal(err)
		}
	}
}
