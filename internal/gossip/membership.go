package gossip

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// This file adds the live-fleet counterpart of the Walker simulator: a
// SWIM-style failure detector that probes real daemons and publishes
// Alive → Suspect → Dead transitions. The placement layer subscribes and
// updates the chord ring, so object → replica assignment follows the
// actual fleet instead of a static address list. It is "SWIM-lite":
// direct probing with a suspicion stage before eviction (the part of
// SWIM that prevents one dropped packet from reshuffling placement),
// without the indirect-probe relays a WAN deployment would add.

// State is a member's detector state.
type State int

const (
	// Alive members answer probes and participate in placement.
	Alive State = iota
	// Suspect members missed recent probes; placement still counts them
	// (their blocks are probably fine) but repair should start watching.
	Suspect
	// Dead members missed enough probes to be evicted from placement.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Prober checks one member's health. The store layer supplies an
// implementation (a wire ping); gossip stays free of any store import so
// the dependency points outward.
type Prober interface {
	Probe(ctx context.Context, addr string) error
}

// ProberFunc adapts a function to the Prober interface.
type ProberFunc func(ctx context.Context, addr string) error

func (f ProberFunc) Probe(ctx context.Context, addr string) error { return f(ctx, addr) }

// Event is one membership transition.
type Event struct {
	Addr string
	// Prev and Next are the states before and after the transition.
	Prev, Next State
}

// MonitorConfig tunes the failure detector. The zero value works.
type MonitorConfig struct {
	// Interval between probe rounds in Run. Default 1s.
	Interval time.Duration
	// ProbeTimeout bounds each individual probe. Default 500ms.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive probe failures that demote Alive to
	// Suspect. Default 1.
	SuspectAfter int
	// DeadAfter is the consecutive probe failures that demote to Dead.
	// Default 3. Must exceed SuspectAfter.
	DeadAfter int
	// Seed drives the per-round probe order. A fixed seed plus a fixed
	// probe outcome sequence yields a fixed event sequence — the
	// determinism the placement acceptance test pins.
	Seed int64
	// OnEvent, when set, is called synchronously with each transition, in
	// deterministic order within a round. Keep it fast; it runs on the
	// probe loop.
	OnEvent func(Event)
}

func (c *MonitorConfig) withDefaults() MonitorConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = time.Second
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = 500 * time.Millisecond
	}
	if out.SuspectAfter <= 0 {
		out.SuspectAfter = 1
	}
	if out.DeadAfter <= out.SuspectAfter {
		out.DeadAfter = out.SuspectAfter + 2
	}
	return out
}

type member struct {
	state State
	// misses counts consecutive failed probes since the last success.
	misses int
}

// Monitor is a SWIM-lite membership failure detector over a set of
// addresses. All methods are safe for concurrent use.
type Monitor struct {
	prober Prober
	cfg    MonitorConfig

	mu      sync.Mutex
	members map[string]*member
	rng     *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
}

// NewMonitor builds a detector over the seed addresses, all initially
// Alive (they are the operator-supplied bootstrap fleet; the first probe
// round corrects optimism).
func NewMonitor(addrs []string, p Prober, cfg MonitorConfig) (*Monitor, error) {
	if p == nil {
		return nil, fmt.Errorf("gossip: nil prober")
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("gossip: no seed members")
	}
	c := cfg.withDefaults()
	m := &Monitor{
		prober:  p,
		cfg:     c,
		members: make(map[string]*member, len(addrs)),
		rng:     rand.New(rand.NewSource(c.Seed)),
		stop:    make(chan struct{}),
	}
	for _, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("gossip: empty member address")
		}
		if _, dup := m.members[a]; dup {
			return nil, fmt.Errorf("gossip: duplicate member %q", a)
		}
		m.members[a] = &member{state: Alive}
	}
	return m, nil
}

// Join adds a member (or revives a Dead one) as Alive and emits the
// transition — the voluntary-join half of the protocol, driven by the
// operator or a peer announcement rather than a probe.
func (m *Monitor) Join(addr string) error {
	if addr == "" {
		return fmt.Errorf("gossip: empty member address")
	}
	m.mu.Lock()
	mb, ok := m.members[addr]
	if !ok {
		mb = &member{state: Dead}
		m.members[addr] = mb
	}
	prev := mb.state
	mb.state = Alive
	mb.misses = 0
	cb := m.cfg.OnEvent
	m.mu.Unlock()
	if prev != Alive && cb != nil {
		cb(Event{Addr: addr, Prev: prev, Next: Alive})
	}
	return nil
}

// Leave marks a member Dead immediately — a graceful departure skips the
// suspicion stage because the node told us it is going.
func (m *Monitor) Leave(addr string) error {
	m.mu.Lock()
	mb, ok := m.members[addr]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("gossip: unknown member %q", addr)
	}
	prev := mb.state
	mb.state = Dead
	mb.misses = m.cfg.DeadAfter
	cb := m.cfg.OnEvent
	m.mu.Unlock()
	if prev != Dead && cb != nil {
		cb(Event{Addr: addr, Prev: prev, Next: Dead})
	}
	return nil
}

// State returns a member's current state; unknown members are Dead.
func (m *Monitor) State(addr string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mb, ok := m.members[addr]; ok {
		return mb.state
	}
	return Dead
}

// Snapshot returns every member and its state, address-sorted.
func (m *Monitor) Snapshot() []Event {
	m.mu.Lock()
	out := make([]Event, 0, len(m.members))
	for a, mb := range m.members {
		out = append(out, Event{Addr: a, Prev: mb.state, Next: mb.state})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// AliveAddrs returns the addresses currently counted into placement
// (Alive or Suspect), sorted.
func (m *Monitor) AliveAddrs() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.members))
	for a, mb := range m.members {
		if mb.state != Dead {
			out = append(out, a)
		}
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

// Tick runs one probe round: every member is probed once, in an order
// drawn from the seeded RNG, and transitions fire synchronously in that
// order. Exported so tests and one-shot tools drive rounds without a
// clock; Run calls it on the configured interval.
func (m *Monitor) Tick(ctx context.Context) {
	m.mu.Lock()
	addrs := make([]string, 0, len(m.members))
	for a := range m.members {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	m.rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	m.mu.Unlock()

	for _, addr := range addrs {
		pctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
		err := m.prober.Probe(pctx, addr)
		cancel()
		m.record(addr, err == nil)
		if ctx.Err() != nil {
			return
		}
	}
}

// record applies one probe outcome and emits any transition.
func (m *Monitor) record(addr string, ok bool) {
	m.mu.Lock()
	mb, present := m.members[addr]
	if !present {
		m.mu.Unlock()
		return
	}
	prev := mb.state
	if ok {
		mb.misses = 0
		mb.state = Alive
	} else {
		mb.misses++
		switch {
		case mb.misses >= m.cfg.DeadAfter:
			mb.state = Dead
		case mb.misses >= m.cfg.SuspectAfter && mb.state == Alive:
			mb.state = Suspect
		}
	}
	next := mb.state
	cb := m.cfg.OnEvent
	m.mu.Unlock()
	if next != prev && cb != nil {
		cb(Event{Addr: addr, Prev: prev, Next: next})
	}
}

// Run probes on the configured interval until ctx is canceled or Stop is
// called. It blocks; callers usually run it in a goroutine (and own the
// wait for its exit, e.g. via a WaitGroup, when they need one).
func (m *Monitor) Run(ctx context.Context) {
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-m.stop:
			return
		case <-ticker.C:
			m.Tick(ctx)
		}
	}
}

// Stop signals a Run loop to exit. Safe to call more than once, and
// harmless if Run was never started.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}
