package gossip

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeProber scripts probe outcomes per address: true = healthy.
type fakeProber struct {
	mu sync.Mutex
	up map[string]bool
}

func newFakeProber(addrs ...string) *fakeProber {
	p := &fakeProber{up: make(map[string]bool)}
	for _, a := range addrs {
		p.up[a] = true
	}
	return p
}

func (p *fakeProber) set(addr string, up bool) {
	p.mu.Lock()
	p.up[addr] = up
	p.mu.Unlock()
}

func (p *fakeProber) Probe(_ context.Context, addr string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.up[addr] {
		return nil
	}
	return errors.New("probe failed")
}

func collectEvents(events *[]Event, mu *sync.Mutex) func(Event) {
	return func(e Event) {
		mu.Lock()
		*events = append(*events, e)
		mu.Unlock()
	}
}

func TestMonitorSuspectThenDead(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	p := newFakeProber(addrs...)
	var mu sync.Mutex
	var events []Event
	m, err := NewMonitor(addrs, p, MonitorConfig{
		Seed:         1,
		SuspectAfter: 1,
		DeadAfter:    3,
		OnEvent:      collectEvents(&events, &mu),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m.Tick(ctx)
	if len(events) != 0 {
		t.Fatalf("healthy round emitted %v", events)
	}

	p.set("b:1", false)
	m.Tick(ctx) // miss 1 → Suspect
	if got := m.State("b:1"); got != Suspect {
		t.Fatalf("after 1 miss: %v", got)
	}
	if got := m.AliveAddrs(); !reflect.DeepEqual(got, []string{"a:1", "b:1", "c:1"}) {
		t.Fatalf("suspect member left placement: %v", got)
	}
	m.Tick(ctx) // miss 2 → still Suspect
	if got := m.State("b:1"); got != Suspect {
		t.Fatalf("after 2 misses: %v", got)
	}
	m.Tick(ctx) // miss 3 → Dead
	if got := m.State("b:1"); got != Dead {
		t.Fatalf("after 3 misses: %v", got)
	}
	if got := m.AliveAddrs(); !reflect.DeepEqual(got, []string{"a:1", "c:1"}) {
		t.Fatalf("dead member still placed: %v", got)
	}
	want := []Event{
		{Addr: "b:1", Prev: Alive, Next: Suspect},
		{Addr: "b:1", Prev: Suspect, Next: Dead},
	}
	mu.Lock()
	got := append([]Event(nil), events...)
	mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events %v, want %v", got, want)
	}

	// Recovery: one good probe restores Alive from either stage.
	p.set("b:1", true)
	m.Tick(ctx)
	if got := m.State("b:1"); got != Alive {
		t.Fatalf("after recovery: %v", got)
	}
}

func TestMonitorJoinLeave(t *testing.T) {
	p := newFakeProber("a:1")
	var mu sync.Mutex
	var events []Event
	m, err := NewMonitor([]string{"a:1"}, p, MonitorConfig{OnEvent: collectEvents(&events, &mu)})
	if err != nil {
		t.Fatal(err)
	}
	p.set("d:1", true)
	if err := m.Join("d:1"); err != nil {
		t.Fatal(err)
	}
	if got := m.State("d:1"); got != Alive {
		t.Fatalf("joined member is %v", got)
	}
	if err := m.Leave("a:1"); err != nil {
		t.Fatal(err)
	}
	if got := m.State("a:1"); got != Dead {
		t.Fatalf("left member is %v", got)
	}
	if err := m.Leave("ghost"); err == nil {
		t.Error("leaving an unknown member succeeded")
	}
	if got := m.State("ghost"); got != Dead {
		t.Fatalf("unknown member is %v, want Dead", got)
	}
	// Rejoin after leave revives without a probe.
	if err := m.Join("a:1"); err != nil {
		t.Fatal(err)
	}
	if got := m.State("a:1"); got != Alive {
		t.Fatalf("rejoined member is %v", got)
	}
	want := []Event{
		{Addr: "d:1", Prev: Dead, Next: Alive},
		{Addr: "a:1", Prev: Alive, Next: Dead},
		{Addr: "a:1", Prev: Dead, Next: Alive},
	}
	mu.Lock()
	got := append([]Event(nil), events...)
	mu.Unlock()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("events %v, want %v", got, want)
	}
}

// TestMonitorDeterministicEvents pins the placement determinism
// contract's membership half: the same seed and the same probe-outcome
// script produce the same event sequence, run to run.
func TestMonitorDeterministicEvents(t *testing.T) {
	run := func() []Event {
		addrs := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
		p := newFakeProber(addrs...)
		var mu sync.Mutex
		var events []Event
		m, err := NewMonitor(addrs, p, MonitorConfig{
			Seed:      42,
			DeadAfter: 2,
			OnEvent:   collectEvents(&events, &mu),
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		script := []func(){
			func() { p.set("b:1", false); p.set("d:1", false) },
			func() { m.Tick(ctx) },
			func() { m.Tick(ctx) },
			func() { p.set("b:1", true) },
			func() { m.Tick(ctx) },
			func() { m.Join("f:1") },
			func() { m.Tick(ctx) },
		}
		for _, step := range script {
			step()
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]Event(nil), events...)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event sequences differ:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("script produced no events")
	}
}

func TestMonitorValidation(t *testing.T) {
	p := newFakeProber()
	if _, err := NewMonitor(nil, p, MonitorConfig{}); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := NewMonitor([]string{"a", "a"}, p, MonitorConfig{}); err == nil {
		t.Error("duplicate members accepted")
	}
	if _, err := NewMonitor([]string{""}, p, MonitorConfig{}); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := NewMonitor([]string{"a"}, nil, MonitorConfig{}); err == nil {
		t.Error("nil prober accepted")
	}
}

func TestMonitorRunStop(t *testing.T) {
	p := newFakeProber("a:1")
	var probes sync.WaitGroup
	probes.Add(2)
	counted := 0
	var cmu sync.Mutex
	wrapped := ProberFunc(func(ctx context.Context, addr string) error {
		cmu.Lock()
		if counted < 2 {
			counted++
			probes.Done()
		}
		cmu.Unlock()
		return p.Probe(ctx, addr)
	})
	m, err := NewMonitor([]string{"a:1"}, wrapped, MonitorConfig{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		m.Run(context.Background())
		close(done)
	}()
	probes.Wait() // at least two rounds ran
	m.Stop()
	m.Stop() // idempotent
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after Stop")
	}
}

// TestMonitorConcurrent races Ticks, Joins, Leaves and reads — the gate
// for -race in make check.
func TestMonitorConcurrent(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1", "d:1"}
	p := newFakeProber(addrs...)
	m, err := NewMonitor(addrs, p, MonitorConfig{Seed: 9, OnEvent: func(Event) {}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 5 {
				case 0:
					p.set(addrs[(g+i)%len(addrs)], i%2 == 0)
					m.Tick(ctx)
				case 1:
					m.Join(fmt.Sprintf("x%d:%d", g, i))
				case 2:
					m.Leave(addrs[(g+i)%len(addrs)])
				case 3:
					m.State(addrs[i%len(addrs)])
					m.AliveAddrs()
				case 4:
					m.Snapshot()
					m.Join(addrs[(g+i)%len(addrs)])
				}
			}
		}(g)
	}
	wg.Wait()
}
