// Package gossip implements random-walk dissemination — the substrate the
// pre-distribution idea falls back to when no geometric routing is
// available (no GPS, no DHT), following the decentralized-erasure-code
// model of Dimakis et al. that Sec. 4 builds on: every node is a cache
// holding one coded block, and each source block performs a few random
// walks over the connectivity graph; wherever a walk terminates, the
// block is folded in with c ← c + βx.
//
// Plain random walks sample nodes proportionally to their degree, which
// would skew the coded-block distribution on irregular topologies. The
// walker therefore applies the Metropolis–Hastings correction — a move
// from u to a uniformly chosen neighbor v is accepted with probability
// min(1, deg(u)/deg(v)) — making the stationary distribution uniform over
// the alive nodes, the same "random cache" model the routing-based
// protocol realizes with seeded locations.
//
// Priority levels work exactly as in predist: each node is assigned a
// level part from a common random seed (so every sender derives the same
// assignment without coordination), and a level-ℓ source block is only
// folded into caches of an eligible part — part ℓ under SLC, parts ≥ ℓ
// under PLC. A walk that terminates on an ineligible node simply keeps
// walking, up to its step budget.
package gossip

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gf256"
)

// Walker performs Metropolis–Hastings random walks over a geometric graph
// with dynamic node liveness.
type Walker struct {
	g     *geom.Graph
	alive []bool
	steps int
}

// NewWalker builds a walker with the given mixing length per walk
// (0 picks 4·|V|, conservative for connected unit-disk deployments).
func NewWalker(g *geom.Graph, steps int) (*Walker, error) {
	if g == nil {
		return nil, fmt.Errorf("gossip: nil graph")
	}
	if steps < 0 {
		return nil, fmt.Errorf("gossip: negative walk length %d", steps)
	}
	if steps == 0 {
		steps = 4 * g.Len()
	}
	w := &Walker{g: g, alive: make([]bool, g.Len()), steps: steps}
	for i := range w.alive {
		w.alive[i] = true
	}
	return w, nil
}

// Steps returns the configured walk length.
func (w *Walker) Steps() int { return w.steps }

// NumNodes returns the node population size.
func (w *Walker) NumNodes() int { return w.g.Len() }

// SetAlive updates node liveness; the slice must have one entry per node.
func (w *Walker) SetAlive(alive []bool) error {
	if len(alive) != w.g.Len() {
		return fmt.Errorf("gossip: alive vector has %d entries, want %d", len(alive), w.g.Len())
	}
	copy(w.alive, alive)
	return nil
}

// Alive reports whether node i is alive.
func (w *Walker) Alive(i int) bool { return i >= 0 && i < len(w.alive) && w.alive[i] }

func (w *Walker) aliveDegree(u int) int {
	d := 0
	for _, v := range w.g.Neighbors(u) {
		if w.alive[v] {
			d++
		}
	}
	return d
}

// Walk runs one Metropolis–Hastings walk of the configured length from
// origin, optionally continuing past the budget until accept(node) holds
// (nil accepts everything). It returns the terminal node and the number
// of transmissions. The walk gives up with an error if no eligible node
// is reached within 4x the budget.
func (w *Walker) Walk(rng *rand.Rand, origin int, accept func(int) bool) (node, hops int, err error) {
	if origin < 0 || origin >= w.g.Len() {
		return 0, 0, fmt.Errorf("gossip: origin %d out of range", origin)
	}
	if !w.alive[origin] {
		return 0, 0, fmt.Errorf("gossip: origin %d is not alive", origin)
	}
	cur := origin
	degCur := w.aliveDegree(cur)
	limit := 4 * w.steps
	for step := 0; step < limit; step++ {
		if step >= w.steps && (accept == nil || accept(cur)) {
			return cur, hops, nil
		}
		if degCur == 0 {
			break // isolated: the walk is stuck here
		}
		k := rng.Intn(degCur)
		next := -1
		for _, v := range w.g.Neighbors(cur) {
			if !w.alive[v] {
				continue
			}
			if k == 0 {
				next = v
				break
			}
			k--
		}
		degNext := w.aliveDegree(next)
		if degNext > degCur && float64(degCur)/float64(degNext) < rng.Float64() {
			continue // Metropolis–Hastings rejection: stay put
		}
		cur = next
		degCur = degNext
		hops++
	}
	if accept == nil || accept(cur) {
		return cur, hops, nil
	}
	return 0, 0, fmt.Errorf("gossip: no eligible node within %d steps from %d", limit, origin)
}

// Config parameterizes a gossip deployment.
type Config struct {
	Scheme core.Scheme
	Levels *core.Levels
	// Dist sizes the per-node part assignment.
	Dist core.PriorityDistribution
	// Seed is the common random seed for the part assignment.
	Seed int64
	// Fanout is the number of walks (cache copies) per source block;
	// 0 uses 3·ln(N) per the decentralized-erasure-code result.
	Fanout int
	// PayloadLen is the source-block payload size (0 for coefficient-only
	// experiments).
	PayloadLen int
}

// Deployment is cache-per-node gossip state: node i holds one coded block.
type Deployment struct {
	cfg     Config
	w       *Walker
	partOf  []int // per-node level part, derived from the common seed
	coeff   [][]byte
	payload [][]byte
	stats   Stats
}

// Stats accumulates dissemination cost.
type Stats struct {
	// Walks is the number of dissemination walks performed.
	Walks int
	// Hops is the total transmissions across all walks.
	Hops int
}

// NewDeployment assigns every node a level part from the common seed and
// prepares empty caches.
func NewDeployment(w *Walker, cfg Config) (*Deployment, error) {
	if w == nil {
		return nil, fmt.Errorf("gossip: nil walker")
	}
	if cfg.Levels == nil {
		return nil, fmt.Errorf("gossip: nil levels")
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("gossip: invalid scheme %v", cfg.Scheme)
	}
	if err := cfg.Dist.Validate(cfg.Levels); err != nil {
		return nil, err
	}
	if cfg.Fanout < 0 {
		return nil, fmt.Errorf("gossip: negative fanout %d", cfg.Fanout)
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = core.LogSparsity(cfg.Levels.Total())
	}
	if cfg.PayloadLen < 0 {
		return nil, fmt.Errorf("gossip: negative payload length %d", cfg.PayloadLen)
	}
	n := w.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("gossip: empty graph")
	}
	d := &Deployment{
		cfg:     cfg,
		w:       w,
		partOf:  make([]int, n),
		coeff:   make([][]byte, n),
		payload: make([][]byte, n),
	}
	// Common-seed part assignment: shuffle node indices and slice into
	// parts sized by the largest-remainder apportionment of Dist.
	sizes := apportion(n, cfg.Dist)
	order := rand.New(rand.NewSource(cfg.Seed)).Perm(n)
	part, used := 0, 0
	for _, node := range order {
		for part < len(sizes)-1 && used >= sizes[part] {
			part++
			used = 0
		}
		d.partOf[node] = part
		used++
	}
	for i := 0; i < n; i++ {
		d.coeff[i] = make([]byte, cfg.Levels.Total())
		d.payload[i] = make([]byte, cfg.PayloadLen)
	}
	return d, nil
}

func apportion(m int, p []float64) []int {
	n := len(p)
	sizes := make([]int, n)
	rem := make([]float64, n)
	total := 0
	for i, pi := range p {
		exact := pi * float64(m)
		sizes[i] = int(exact)
		rem[i] = exact - float64(sizes[i])
		total += sizes[i]
	}
	for total < m {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		sizes[best]++
		rem[best] = -1
		total++
	}
	return sizes
}

// PartOf returns the level part assigned to node i.
func (d *Deployment) PartOf(i int) int { return d.partOf[i] }

// Stats returns the accumulated dissemination cost.
func (d *Deployment) Stats() Stats { return d.stats }

// eligible reports whether a block of the given level may be folded into
// node i's cache under the deployment's scheme.
func (d *Deployment) eligible(node, level int) bool {
	switch d.cfg.Scheme {
	case core.SLC:
		return d.partOf[node] == level
	case core.PLC:
		return d.partOf[node] >= level
	default: // RLC
		return true
	}
}

// Disseminate sends source block blockIdx from origin on Fanout random
// walks, folding it into each eligible terminal cache.
func (d *Deployment) Disseminate(rng *rand.Rand, origin, blockIdx int, payload []byte) error {
	if len(payload) != d.cfg.PayloadLen {
		return fmt.Errorf("gossip: payload length %d, want %d", len(payload), d.cfg.PayloadLen)
	}
	level, err := d.cfg.Levels.LevelOf(blockIdx)
	if err != nil {
		return err
	}
	for walk := 0; walk < d.cfg.Fanout; walk++ {
		node, hops, err := d.w.Walk(rng, origin, func(n int) bool { return d.eligible(n, level) })
		if err != nil {
			return fmt.Errorf("gossip: block %d walk %d: %w", blockIdx, walk, err)
		}
		d.stats.Walks++
		d.stats.Hops += hops
		beta := byte(1 + rng.Intn(255))
		d.coeff[node][blockIdx] ^= beta
		if d.cfg.PayloadLen > 0 {
			gf256.AddMulSlice(d.payload[node], payload, beta)
		}
	}
	return nil
}

// CodedBlocks returns the coded block of every node passing the alive
// filter (nil = all) that received at least one source block.
func (d *Deployment) CodedBlocks(alive func(node int) bool) []*core.CodedBlock {
	out := make([]*core.CodedBlock, 0, len(d.coeff))
	for i := range d.coeff {
		if alive != nil && !alive(i) {
			continue
		}
		if gf256.IsZero(d.coeff[i]) {
			continue
		}
		out = append(out, &core.CodedBlock{
			Level:   d.partOf[i],
			Coeff:   append([]byte(nil), d.coeff[i]...),
			Payload: append([]byte(nil), d.payload[i]...),
		})
	}
	return out
}
