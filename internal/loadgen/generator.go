package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/store"
)

// Op is one planned arrival: when it fires, what it does, and the seed
// for every random draw inside it. The whole op list is built up front
// from the scenario seed, so two runs of the same scenario issue the
// same operations in the same order regardless of how worker goroutines
// interleave — only the measured latencies differ.
type Op struct {
	At    time.Duration `json:"at"`
	Put   bool          `json:"put"`
	Obj   int           `json:"obj"`
	Level int           `json:"level"`
	Seed  int64         `json:"seed"`
}

// BuildOps derives the full arrival schedule from the scenario: a
// Poisson process at the scenario rate (piecewise per phase), each
// arrival tagged with kind, object, level, and a per-op seed. Pure —
// no wall clock — so it is replayable and testable.
func BuildOps(sc *Scenario) ([]Op, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	levels := len(sc.LevelFractions)
	var lvlDraw *dist.Categorical
	if len(sc.LevelWeights) > 0 {
		w := normalize(sc.LevelWeights)
		var err error
		lvlDraw, err = dist.NewCategorical(w)
		if err != nil {
			return nil, fmt.Errorf("loadgen: level_weights: %w", err)
		}
	}
	phases := make([]RatePhase, len(sc.Phases))
	copy(phases, sc.Phases)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].At < phases[j].At })

	rateAt := func(t time.Duration) float64 {
		r := sc.Rate
		for _, p := range phases {
			if t >= p.At.D() {
				r = p.Rate
			}
		}
		return r
	}

	rng := rand.New(rand.NewSource(sc.Seed))
	var ops []Op
	t := time.Duration(0)
	for {
		// Exponential inter-arrival at the rate in force now: a Poisson
		// process with piecewise-constant intensity.
		gap := time.Duration(rng.ExpFloat64() / rateAt(t) * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
		if t >= sc.Duration.D() {
			return ops, nil
		}
		op := Op{
			At:   t,
			Put:  rng.Float64() < sc.PutFraction,
			Obj:  rng.Intn(sc.Objects),
			Seed: rng.Int63(),
		}
		if lvlDraw != nil {
			op.Level = lvlDraw.Draw(rng)
		} else {
			op.Level = rng.Intn(levels)
		}
		ops = append(ops, op)
	}
}

func normalize(w []float64) []float64 {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v / sum
	}
	return out
}

// Target is the slice of the storage API the load generator drives:
// single-block puts, batch seeding, and object collection. The flat
// replica set (store.Replicated) satisfies it directly; the
// consistent-hash ring (store.Placed) does via placedTarget, so every
// scenario shape runs against either placement regime unchanged.
type Target interface {
	Put(ctx context.Context, b *core.CodedBlock) error
	PutAll(ctx context.Context, blocks []*core.CodedBlock) (int, error)
	CollectObject(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error)
}

// placedTarget adapts store.Placed's object-keyed Collect name to the
// Target surface.
type placedTarget struct{ *store.Placed }

func (t placedTarget) CollectObject(ctx context.Context, obj core.ObjectID, maxLevel int) ([]*core.CodedBlock, error) {
	return t.Placed.Collect(ctx, obj, maxLevel)
}

// generator executes a planned op list open-loop: a scheduler goroutine
// releases ops at their planned times into a bounded queue; a fixed
// worker pool drains it. A full queue means the fleet is not keeping up
// — the op is counted as overload-dropped and the scheduler moves on,
// never blocking the arrival process on completions.
type generator struct {
	sc       *Scenario
	target   Target
	encoders []*core.Encoder
	objs     []core.ObjectID

	mu      sync.Mutex
	put     []latSeries // per level
	get     []latSeries
	dropped int
	bytes   int64
}

// latSeries accumulates latencies (ms) and outcomes for one (kind,
// level) cell.
type latSeries struct {
	samples []float64
	errs    int
}

func newGenerator(sc *Scenario, target Target, encoders []*core.Encoder, objs []core.ObjectID) *generator {
	n := len(sc.LevelFractions)
	return &generator{
		sc:       sc,
		target:   target,
		encoders: encoders,
		objs:     objs,
		put:      make([]latSeries, n),
		get:      make([]latSeries, n),
	}
}

// run plays the op list against the fleet, returning when every
// accepted op has completed. It honors ctx for early shutdown.
func (g *generator) run(ctx context.Context, ops []Op, start time.Time) {
	depth := g.sc.QueueDepth
	if depth <= 0 {
		depth = 4 * g.sc.Clients
	}
	queue := make(chan Op, depth)
	var workers sync.WaitGroup
	for i := 0; i < g.sc.Clients; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for op := range queue {
				g.execute(ctx, op)
			}
		}()
	}
	for _, op := range ops {
		if !sleepUntil(ctx, start.Add(op.At)) {
			break
		}
		select {
		case queue <- op:
		default:
			g.mu.Lock()
			g.dropped++
			g.mu.Unlock()
		}
	}
	close(queue)
	workers.Wait()
}

func (g *generator) execute(ctx context.Context, op Op) {
	opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	rng := rand.New(rand.NewSource(op.Seed))
	t0 := time.Now()
	var (
		err   error
		moved int
	)
	if op.Put {
		var blk *core.CodedBlock
		blk, err = g.encoders[op.Obj].Encode(rng, op.Level)
		if err == nil {
			blk.Object = g.objs[op.Obj]
			err = g.target.Put(opCtx, blk)
			if err == nil {
				moved = len(blk.Payload)
			}
		}
	} else {
		var blocks []*core.CodedBlock
		blocks, err = g.target.CollectObject(opCtx, g.objs[op.Obj], op.Level)
		if err == nil && len(blocks) == 0 {
			err = fmt.Errorf("loadgen: object %v level %d: no blocks", g.objs[op.Obj], op.Level)
		}
		for _, b := range blocks {
			moved += len(b.Payload)
		}
	}
	ms := float64(time.Since(t0)) / float64(time.Millisecond)

	g.mu.Lock()
	cell := &g.get[op.Level]
	if op.Put {
		cell = &g.put[op.Level]
	}
	cell.samples = append(cell.samples, ms)
	if err != nil {
		cell.errs++
	} else {
		g.bytes += int64(moved)
	}
	g.mu.Unlock()
}
