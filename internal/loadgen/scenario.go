// Package loadgen drives the real prlcd TCP fleet at production-shaped
// concurrency: an open-loop arrival generator (arrivals are scheduled by
// the clock, never gated on completions, so overload shows up as queueing
// latency instead of silently throttled throughput), a live chaos
// controller that executes seed-deterministic fault schedules against
// real daemons (kill/restart) and the generator's own transport
// (partition/heal, corruption, delay via store.FaultDialer), and an SLO
// reporter that computes per-level put/get p50/p99, error rates, goodput,
// and a bit-exact level-0 decode spot-check from the generator's own
// clocks, cross-checked against each daemon's scraped metrics registry.
//
// Everything random — arrival times, op mix, object choice, level
// choice, payload bytes, fault targets — derives from Scenario.Seed, so
// the same scenario file replays the same schedule. Wall-clock execution
// then stretches or compresses around real daemon behavior, which is the
// point: the schedule is deterministic, the measured latencies are not.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("1.5s") and unmarshals from either a string or a float of seconds —
// the scenario-file format.
type Duration time.Duration

func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("loadgen: duration wants a string like \"10s\" or seconds, got %s", b)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// RatePhase changes the arrival rate mid-run: from At onward, arrivals
// come at Rate ops/sec. Phases model flash crowds without a second
// scenario mechanism.
type RatePhase struct {
	At   Duration `json:"at"`
	Rate float64  `json:"rate"`
}

// FaultSpec is one scheduled fault in a scenario file. Node selects the
// target daemon by fleet index; -1 picks a seed-deterministic target at
// schedule build time ("some node", stable across reruns). Kinds:
//
//	kill       stop the daemon process; For > 0 restarts it that much later
//	partition  cut the generator's transport to the node; For heals it
//	corrupt    flip one byte per written frame with probability Prob; For reverts
//	delay      delay writes with probability Prob; For reverts
//	join       add the node to the placement ring (requires Placement);
//	           -1 means the next spare not yet joined; never reverted
//
// For == 0 on kill means the node stays dead for the rest of the run —
// the repair-under-load shape.
type FaultSpec struct {
	At   Duration `json:"at"`
	Kind string   `json:"kind"`
	Node int      `json:"node"`
	For  Duration `json:"for,omitempty"`
	Prob float64  `json:"prob,omitempty"`
}

// Scenario is one named load-and-chaos experiment, loadable from JSON.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random choice in the run. Same seed, same
	// schedule — the acceptance criterion.
	Seed int64 `json:"seed"`
	// Duration is how long arrivals are generated.
	Duration Duration `json:"duration"`
	// Clients is the worker-pool size: how many ops may be in flight at
	// once. Arrivals beyond this queue (open loop) rather than block.
	Clients int `json:"clients"`
	// Rate is the base arrival rate in ops/sec; Phases override it from
	// their At onward.
	Rate   float64     `json:"rate"`
	Phases []RatePhase `json:"phases,omitempty"`
	// PutFraction of arrivals are puts; the rest are gets.
	PutFraction float64 `json:"put_fraction"`
	// Objects is how many distinct objects the run touches; each gets its
	// own code and namespace. Object choice per op is uniform.
	Objects int `json:"objects"`
	// Blocks/LevelFractions/PayloadBytes shape each object's code:
	// Blocks source blocks of PayloadBytes each, split into priority
	// levels by LevelFractions (most critical first).
	Blocks         int       `json:"blocks"`
	PayloadBytes   int       `json:"payload_bytes"`
	LevelFractions []float64 `json:"level_fractions"`
	// SeedBlocks is the coded-block baseline put per object before the
	// clock starts, so gets decode from op one. 0 = 1.6x Blocks.
	SeedBlocks int `json:"seed_blocks,omitempty"`
	// LevelWeights weight which priority level an op targets (puts encode
	// at the drawn level; gets read maxLevel = the drawn level). Length
	// must match LevelFractions. Empty = uniform.
	LevelWeights []float64 `json:"level_weights,omitempty"`
	// Tolerance is the replicated store's f: the last level is stored on
	// f+1 daemons, level 0 on all.
	Tolerance int `json:"tolerance"`
	// Placement routes traffic through the object-keyed consistent-hash
	// placement layer (store.Placed) instead of one flat replica set, so
	// membership can change mid-run. Join faults and Migrate require it.
	Placement bool `json:"placement,omitempty"`
	// Spares holds the last Spares fleet nodes out of the initial ring;
	// "join" faults grow the ring from this pool (Node -1 = next spare).
	Spares int `json:"spares,omitempty"`
	// Replication is the ring's successor-list size R. 0 = store default.
	Replication int `json:"replication,omitempty"`
	// Migrate runs the migration mover over the ring for the whole run,
	// kicked by every membership change — the grow-fleet shape.
	Migrate bool `json:"migrate,omitempty"`
	// MigrateInterval overrides the mover's round interval.
	MigrateInterval Duration `json:"migrate_interval,omitempty"`
	// MigrateRateBytes caps the mover's transfer bandwidth in bytes/sec
	// so migration cannot starve foreground traffic; 0 = unthrottled.
	MigrateRateBytes int64 `json:"migrate_rate_bytes,omitempty"`
	// QueueDepth bounds the arrival queue; arrivals finding it full are
	// counted as overload-dropped, never silently blocked on. 0 = 4x
	// Clients.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Faults is the chaos schedule (see FaultSpec).
	Faults []FaultSpec `json:"faults,omitempty"`
	// Repair runs a decode-free repair daemon over the spot-check object
	// for the whole run — the repair-under-load shape.
	Repair bool `json:"repair,omitempty"`
	// RepairInterval overrides the repair daemon's round interval.
	RepairInterval Duration `json:"repair_interval,omitempty"`
	// ExpectZeroErrors marks scenarios whose SLO includes "no
	// client-visible errors" (churn-storm); runners can gate on it.
	ExpectZeroErrors bool `json:"expect_zero_errors,omitempty"`
}

// Validate checks the scenario and fills nothing: scenarios are data, so
// surprising defaults would hide in files. Only genuinely optional
// fields (SeedBlocks, QueueDepth, LevelWeights) have computed fallbacks,
// applied at run time.
func (s *Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("loadgen: scenario needs a name")
	case s.Duration <= 0:
		return fmt.Errorf("loadgen: scenario %s: duration must be positive", s.Name)
	case s.Clients <= 0:
		return fmt.Errorf("loadgen: scenario %s: clients must be positive", s.Name)
	case s.Rate <= 0:
		return fmt.Errorf("loadgen: scenario %s: rate must be positive", s.Name)
	case s.PutFraction < 0 || s.PutFraction > 1:
		return fmt.Errorf("loadgen: scenario %s: put_fraction %v outside [0,1]", s.Name, s.PutFraction)
	case s.Objects <= 0:
		return fmt.Errorf("loadgen: scenario %s: objects must be positive", s.Name)
	case s.Blocks <= 0:
		return fmt.Errorf("loadgen: scenario %s: blocks must be positive", s.Name)
	case s.PayloadBytes <= 0:
		return fmt.Errorf("loadgen: scenario %s: payload_bytes must be positive", s.Name)
	case len(s.LevelFractions) == 0:
		return fmt.Errorf("loadgen: scenario %s: level_fractions is required", s.Name)
	case s.Tolerance < 0:
		return fmt.Errorf("loadgen: scenario %s: tolerance must be >= 0", s.Name)
	case s.Spares < 0 || s.Replication < 0:
		return fmt.Errorf("loadgen: scenario %s: spares and replication must be >= 0", s.Name)
	case s.Spares > 0 && !s.Placement:
		return fmt.Errorf("loadgen: scenario %s: spares require placement", s.Name)
	case s.Migrate && !s.Placement:
		return fmt.Errorf("loadgen: scenario %s: migrate requires placement", s.Name)
	case s.MigrateRateBytes < 0:
		return fmt.Errorf("loadgen: scenario %s: migrate_rate_bytes must be >= 0", s.Name)
	}
	if len(s.LevelWeights) > 0 && len(s.LevelWeights) != len(s.LevelFractions) {
		return fmt.Errorf("loadgen: scenario %s: %d level_weights for %d levels",
			s.Name, len(s.LevelWeights), len(s.LevelFractions))
	}
	for _, p := range s.Phases {
		if p.Rate <= 0 || p.At < 0 {
			return fmt.Errorf("loadgen: scenario %s: phase at %v rate %v invalid", s.Name, p.At.D(), p.Rate)
		}
	}
	for i, f := range s.Faults {
		switch f.Kind {
		case "kill", "partition", "corrupt", "delay", "join":
		default:
			return fmt.Errorf("loadgen: scenario %s: fault %d: unknown kind %q", s.Name, i, f.Kind)
		}
		if f.At < 0 || f.For < 0 {
			return fmt.Errorf("loadgen: scenario %s: fault %d: negative offset", s.Name, i)
		}
		if (f.Kind == "corrupt" || f.Kind == "delay") && (f.Prob <= 0 || f.Prob > 1) {
			return fmt.Errorf("loadgen: scenario %s: fault %d: %s needs prob in (0,1]", s.Name, i, f.Kind)
		}
		if f.Kind == "partition" && f.For <= 0 {
			return fmt.Errorf("loadgen: scenario %s: fault %d: partition needs a heal window (for)", s.Name, i)
		}
		if f.Kind == "join" {
			if !s.Placement {
				return fmt.Errorf("loadgen: scenario %s: fault %d: join requires placement", s.Name, i)
			}
			if f.For > 0 {
				return fmt.Errorf("loadgen: scenario %s: fault %d: join is permanent, drop the revert window", s.Name, i)
			}
		}
	}
	return nil
}

// LoadScenarios reads a scenario file: either one scenario object or an
// array of them. Every scenario is validated.
func LoadScenarios(path string) ([]Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []Scenario
	if err := json.Unmarshal(raw, &many); err != nil {
		var one Scenario
		if err2 := json.Unmarshal(raw, &one); err2 != nil {
			return nil, fmt.Errorf("loadgen: %s is neither a scenario nor a scenario list: %v", path, err)
		}
		many = []Scenario{one}
	}
	for i := range many {
		if err := many[i].Validate(); err != nil {
			return nil, err
		}
	}
	return many, nil
}

// Builtins returns the five named scenarios of the `make loadtest`
// matrix, scaled for a small local fleet. Durations and rates are meant
// to be overridden by the runner's flags for bigger machines.
func Builtins() []Scenario {
	base := Scenario{
		Seed:           1,
		Duration:       Duration(10 * time.Second),
		Clients:        64,
		Rate:           300,
		PutFraction:    0.3,
		Objects:        4,
		Blocks:         16,
		PayloadBytes:   1024,
		LevelFractions: []float64{0.25, 0.75},
		LevelWeights:   []float64{0.5, 0.5},
		Tolerance:      1,
	}
	steady := base
	steady.Name = "steady-state"
	steady.Description = "constant open-loop mix against a healthy fleet: the latency baseline"

	flash := base
	flash.Name = "flash-crowd"
	flash.Seed = 2
	flash.Description = "10x arrival burst through the middle third: queueing shows up in p99, not in dropped load"
	flash.Phases = []RatePhase{
		{At: Duration(3 * time.Second), Rate: base.Rate * 10},
		{At: Duration(6 * time.Second), Rate: base.Rate},
	}

	churn := base
	churn.Name = "churn-storm"
	churn.Seed = 3
	churn.Description = "kill/restart and partition/heal cycles under load; SLO includes zero client-visible errors and bit-exact level-0 decode"
	churn.ExpectZeroErrors = true
	churn.Faults = []FaultSpec{
		{At: Duration(1 * time.Second), Kind: "kill", Node: -1, For: Duration(2 * time.Second)},
		{At: Duration(2 * time.Second), Kind: "partition", Node: -1, For: Duration(1500 * time.Millisecond)},
		{At: Duration(5 * time.Second), Kind: "kill", Node: -1, For: Duration(2 * time.Second)},
		{At: Duration(6 * time.Second), Kind: "partition", Node: -1, For: Duration(1 * time.Second)},
	}

	repairUL := base
	repairUL.Name = "repair-under-load"
	repairUL.Seed = 4
	repairUL.Description = "a daemon dies for good and a corruption window opens while a repair daemon regenerates redundancy mid-traffic"
	repairUL.Repair = true
	repairUL.RepairInterval = Duration(1 * time.Second)
	repairUL.Faults = []FaultSpec{
		{At: Duration(2 * time.Second), Kind: "kill", Node: -1}, // never restarted
		{At: Duration(4 * time.Second), Kind: "corrupt", Node: -1, For: Duration(2 * time.Second), Prob: 0.02},
	}

	grow := base
	grow.Name = "grow-fleet"
	grow.Seed = 5
	grow.Description = "a spare node joins the ring mid-run and the mover re-homes blocks most-critical-first under live traffic; SLO includes zero client-visible errors and bit-exact level-0 decode"
	grow.Objects = 10 // enough that some objects land on the new node with near-certainty
	grow.Placement = true
	grow.Spares = 1
	grow.Replication = 2
	grow.Migrate = true
	grow.MigrateInterval = Duration(500 * time.Millisecond)
	grow.MigrateRateBytes = 8 << 20
	grow.ExpectZeroErrors = true
	grow.Faults = []FaultSpec{
		{At: Duration(3 * time.Second), Kind: "join", Node: -1},
	}
	return []Scenario{steady, flash, churn, repairUL, grow}
}

// Builtin returns one builtin scenario by name.
func Builtin(name string) (Scenario, error) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("loadgen: no builtin scenario %q (want steady-state, flash-crowd, churn-storm, repair-under-load or grow-fleet)", name)
}
