package loadgen

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// recordingInjector logs every injector call with a timestamp, and can
// simulate a node that is already down.
type recordingInjector struct {
	mu    sync.Mutex
	calls []string
	when  map[string]time.Duration
	start time.Time
}

func newRecordingInjector() *recordingInjector {
	return &recordingInjector{when: make(map[string]time.Duration), start: time.Now()}
}

func (r *recordingInjector) log(s string) {
	r.mu.Lock()
	r.calls = append(r.calls, s)
	if _, ok := r.when[s]; !ok {
		r.when[s] = time.Since(r.start)
	}
	r.mu.Unlock()
}

func (r *recordingInjector) Kill(n int) error    { r.log(call("kill", n)); return nil }
func (r *recordingInjector) Restart(n int) error { r.log(call("restart", n)); return nil }
func (r *recordingInjector) Join(n int) error    { r.log(call("join", n)); return nil }
func (r *recordingInjector) Partition(n int)     { r.log(call("partition", n)) }
func (r *recordingInjector) Heal(n int)          { r.log(call("heal", n)) }
func (r *recordingInjector) SetCorrupt(p float64) {
	if p > 0 {
		r.log("corrupt-on")
	} else {
		r.log("corrupt-off")
	}
}
func (r *recordingInjector) SetDelay(p float64) {
	if p > 0 {
		r.log("delay-on")
	} else {
		r.log("delay-off")
	}
}

func (r *recordingInjector) seen(s string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.calls {
		if c == s {
			return true
		}
	}
	return false
}

func call(kind string, n int) string {
	return kind + string(rune('0'+n))
}

// Overlapping kill, partition, and corrupt windows must all fire, all
// revert, and leave no goroutine behind once Run returns. Run under
// -race, this is the satellite "overlapping faults compose" check.
func TestControllerOverlappingFaultsRevertAndDontLeak(t *testing.T) {
	specs := []FaultSpec{
		{At: 0, Kind: "kill", Node: 0, For: Duration(120 * time.Millisecond)},
		{At: Duration(20 * time.Millisecond), Kind: "partition", Node: 1, For: Duration(60 * time.Millisecond)},
		{At: Duration(40 * time.Millisecond), Kind: "corrupt", Node: 0, For: Duration(100 * time.Millisecond), Prob: 0.3},
		{At: Duration(50 * time.Millisecond), Kind: "delay", Node: 1, For: Duration(30 * time.Millisecond), Prob: 0.5},
	}
	sched, err := BuildSchedule(specs, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	inj := newRecordingInjector()
	recs := NewController(sched, inj).Run(context.Background(), time.Now())

	if len(recs) != len(specs) {
		t.Fatalf("%d fault records for %d faults", len(recs), len(specs))
	}
	for _, want := range []string{
		call("kill", 0), call("restart", 0),
		call("partition", 1), call("heal", 1),
		"corrupt-on", "corrupt-off", "delay-on", "delay-off",
	} {
		if !inj.seen(want) {
			t.Errorf("injector never saw %s (calls: %v)", want, inj.calls)
		}
	}
	for _, rec := range recs {
		if rec.Err != "" || rec.RevertErr != "" {
			t.Errorf("fault %v: err=%q revert=%q", rec.ScheduledFault, rec.Err, rec.RevertErr)
		}
		if rec.RevertedAt < rec.FiredAt {
			t.Errorf("fault %v reverted at %v before firing at %v", rec.ScheduledFault, rec.RevertedAt, rec.FiredAt)
		}
	}
	// Run's return is the barrier: nothing it started may survive it.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("%d goroutines after Run, %d before", n, before)
	}
}

// Cancelling the chaos context mid-window must execute pending reverts
// immediately instead of stranding faults — the fleet is reused for the
// decode spot-check after the generator stops.
func TestControllerCancelRevertsImmediately(t *testing.T) {
	sched, err := BuildSchedule([]FaultSpec{
		{At: 0, Kind: "kill", Node: 0, For: Duration(time.Hour)},
		{At: 0, Kind: "partition", Node: 1, For: Duration(time.Hour)},
	}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := newRecordingInjector()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []FaultRecord, 1)
	go func() { done <- NewController(sched, inj).Run(ctx, time.Now()) }()

	deadline := time.Now().Add(2 * time.Second)
	for !(inj.seen(call("kill", 0)) && inj.seen(call("partition", 1))) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case recs := <-done:
		for _, want := range []string{call("restart", 0), call("heal", 1)} {
			if !inj.seen(want) {
				t.Errorf("cancelled run never executed %s", want)
			}
		}
		for _, rec := range recs {
			if rec.RevertedAt > time.Hour {
				t.Errorf("revert waited out the full window: %+v", rec)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// A permanent kill (no revert window) must not be restarted and must
// not block Run.
func TestControllerPermanentKill(t *testing.T) {
	sched, err := BuildSchedule([]FaultSpec{{At: 0, Kind: "kill", Node: 0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := newRecordingInjector()
	recs := NewController(sched, inj).Run(context.Background(), time.Now())
	if !inj.seen(call("kill", 0)) || inj.seen(call("restart", 0)) {
		t.Errorf("permanent kill executed wrong calls: %v", inj.calls)
	}
	if len(recs) != 1 || recs[0].RevertedAt != 0 {
		t.Errorf("records = %+v", recs)
	}
}
