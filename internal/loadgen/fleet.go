package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Fleet abstracts the daemons under test: a set of block-store
// addresses that can be killed and restarted by index, each optionally
// exposing an HTTP metrics endpoint to scrape. cmd/prlcload implements
// it over real prlcd processes; ServerFleet runs servers in-process so
// loadgen's own tests need no binaries.
type Fleet interface {
	Addrs() []string
	// MetricsAddrs returns the observability addresses, aligned with
	// Addrs; "" means the node exposes none.
	MetricsAddrs() []string
	Kill(node int) error
	Restart(node int) error
}

// ServerFleet is an in-process Fleet: n store.Servers over per-node
// MemStore engines and per-node metrics registries. Kill shuts the
// server down; Restart boots a new server at the same address over the
// same engine and registry, matching a daemon restart with an intact
// data directory.
type ServerFleet struct {
	mu      sync.Mutex
	addrs   []string
	maddrs  []string
	engines []*store.MemStore
	regs    []*metrics.Registry
	srvs    []*store.Server // nil while a node is down
	msrvs   []*http.Server
}

// NewServerFleet boots n nodes on loopback. withMetrics adds an HTTP
// metrics listener per node so scrape cross-checks work in-process.
func NewServerFleet(n int, withMetrics bool) (*ServerFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: fleet needs at least one node")
	}
	f := &ServerFleet{
		addrs:   make([]string, n),
		maddrs:  make([]string, n),
		engines: make([]*store.MemStore, n),
		regs:    make([]*metrics.Registry, n),
		srvs:    make([]*store.Server, n),
		msrvs:   make([]*http.Server, n),
	}
	for i := 0; i < n; i++ {
		f.engines[i] = store.NewMemStore(0)
		f.regs[i] = metrics.NewRegistry()
		srv, err := store.NewServer(store.ServerConfig{
			Addr:    "127.0.0.1:0",
			Blocks:  f.engines[i],
			Metrics: f.regs[i],
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.srvs[i] = srv
		f.addrs[i] = srv.Addr()
		if withMetrics {
			mln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				f.Close()
				return nil, err
			}
			ms := &http.Server{Handler: metrics.Handler(f.regs[i])}
			go ms.Serve(mln)
			f.msrvs[i] = ms
			f.maddrs[i] = mln.Addr().String()
		}
	}
	return f, nil
}

func (f *ServerFleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.addrs))
	copy(out, f.addrs)
	return out
}

func (f *ServerFleet) MetricsAddrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.maddrs))
	copy(out, f.maddrs)
	return out
}

// Registries exposes the per-node registries for direct assertions in
// tests (the scrape path is exercised separately).
func (f *ServerFleet) Registries() []*metrics.Registry { return f.regs }

func (f *ServerFleet) Kill(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= len(f.srvs) {
		return fmt.Errorf("loadgen: kill node %d of %d", node, len(f.srvs))
	}
	srv := f.srvs[node]
	if srv == nil {
		return fmt.Errorf("loadgen: node %d already down", node)
	}
	f.srvs[node] = nil
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func (f *ServerFleet) Restart(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= len(f.srvs) {
		return fmt.Errorf("loadgen: restart node %d of %d", node, len(f.srvs))
	}
	if f.srvs[node] != nil {
		return fmt.Errorf("loadgen: node %d already up", node)
	}
	// Same address, same engine, same registry: a daemon restart with an
	// intact data directory. The old listener is closed, so rebinding the
	// port succeeds immediately on loopback.
	srv, err := store.NewServer(store.ServerConfig{
		Addr:    f.addrs[node],
		Blocks:  f.engines[node],
		Metrics: f.regs[node],
	})
	if err != nil {
		return fmt.Errorf("loadgen: restart node %d: %w", node, err)
	}
	f.srvs[node] = srv
	return nil
}

// Revive restarts every down node — matrix runners call it between
// scenarios so a permanent kill in one scenario does not degrade the
// next.
func (f *ServerFleet) Revive() error {
	f.mu.Lock()
	down := []int{}
	for i, srv := range f.srvs {
		if srv == nil {
			down = append(down, i)
		}
	}
	f.mu.Unlock()
	for _, i := range down {
		if err := f.Restart(i); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the whole fleet down, ignoring already-dead nodes.
func (f *ServerFleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, srv := range f.srvs {
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			srv.Shutdown(ctx)
			cancel()
			f.srvs[i] = nil
		}
		if f.msrvs[i] != nil {
			f.msrvs[i].Close()
			f.msrvs[i] = nil
		}
	}
}

// fleetInjector adapts a Fleet plus the generator's FaultDialer into
// the chaos controller's Injector: process faults go to the fleet,
// join faults to the placement ring (when the runner armed one),
// transport faults to the dialer.
type fleetInjector struct {
	fleet  Fleet
	dialer *store.FaultDialer
	addrs  []string

	mu     sync.Mutex
	joinFn func(addr string) error
	spares []int // fleet indices not yet joined to the ring, in join order
}

func newFleetInjector(fleet Fleet, dialer *store.FaultDialer) *fleetInjector {
	return &fleetInjector{fleet: fleet, dialer: dialer, addrs: fleet.Addrs()}
}

// enableJoins arms the "join" fault kind: join adds a fleet address to
// the placement ring, and the last spares fleet nodes form the pool a
// Node == -1 join draws from, in index order.
func (fi *fleetInjector) enableJoins(join func(addr string) error, spares int) {
	fi.joinFn = join
	for i := len(fi.addrs) - spares; i < len(fi.addrs); i++ {
		fi.spares = append(fi.spares, i)
	}
}

func (fi *fleetInjector) Kill(node int) error    { return fi.fleet.Kill(node) }
func (fi *fleetInjector) Restart(node int) error { return fi.fleet.Restart(node) }

func (fi *fleetInjector) Join(node int) error {
	fi.mu.Lock()
	join := fi.joinFn
	if node == -1 && len(fi.spares) > 0 {
		node = fi.spares[0]
		fi.spares = fi.spares[1:]
	}
	fi.mu.Unlock()
	switch {
	case join == nil:
		return fmt.Errorf("loadgen: join fault without a placement ring")
	case node == -1:
		return fmt.Errorf("loadgen: join fault with no spare nodes left")
	case node < 0 || node >= len(fi.addrs):
		return fmt.Errorf("loadgen: join node %d of %d", node, len(fi.addrs))
	}
	return join(fi.addrs[node])
}
func (fi *fleetInjector) Partition(node int)   { fi.dialer.Partition(fi.addrs[node]) }
func (fi *fleetInjector) Heal(node int)        { fi.dialer.Heal(fi.addrs[node]) }
func (fi *fleetInjector) SetCorrupt(p float64) { fi.dialer.SetCorruptProb(p) }
func (fi *fleetInjector) SetDelay(p float64)   { fi.dialer.SetDelayProb(p) }
