package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// OpStats summarizes one (kind, level) latency series, computed from
// the generator's own clocks.
type OpStats struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	MaxMs     float64 `json:"max_ms"`
}

// LevelStats is the SLO view for one priority level.
type LevelStats struct {
	Level int     `json:"level"`
	Put   OpStats `json:"put"`
	Get   OpStats `json:"get"`
}

// DecodeCheck is the end-of-run bit-exactness probe: collect the
// spot-check object from whatever the fleet still holds and verify the
// level-0 (most critical) sources decode byte-identical to what the
// generator encoded from.
type DecodeCheck struct {
	Object        string `json:"object"`
	BlocksRead    int    `json:"blocks_read"`
	DecodedLevels int    `json:"decoded_levels"`
	Level0Blocks  int    `json:"level0_blocks"`
	BitExact      bool   `json:"bit_exact"`
	Err           string `json:"err,omitempty"`
}

// ScrapeCheck cross-validates the generator's own numbers against the
// fleet's scraped metrics registries: the client-side registry must have
// seen at least as many successful ops as the generator counted, and the
// daemons' request totals must line up unless a restart reset them.
type ScrapeCheck struct {
	Nodes        int     `json:"nodes"`
	ScrapeErrors int     `json:"scrape_errors"`
	ServerOps    float64 `json:"server_requests_total"`
	ClientOpsOK  float64 `json:"client_ops_total"`
	GeneratorOK  int     `json:"generator_ops_ok"`
	Consistent   bool    `json:"consistent"`
	Detail       string  `json:"detail,omitempty"`
}

// MigrationCheck summarizes the mover's work during a run with a
// placement ring: how often it woke, what it re-homed, and what it
// reclaimed from stale holders. Counts come from the mover's own
// metrics, so they cover every round of the run.
type MigrationCheck struct {
	Rounds            int     `json:"rounds"`
	RoundErrors       float64 `json:"round_errors"`
	Kicks             float64 `json:"kicks"`
	ObjectsPlanned    float64 `json:"objects_planned"`
	ObjectsMigrated   float64 `json:"objects_migrated"`
	ObjectErrors      float64 `json:"object_errors"`
	BlocksRegenerated float64 `json:"blocks_regenerated"`
	BlocksCopied      float64 `json:"blocks_copied"`
	DeletesIssued     float64 `json:"deletes_issued"`
	BlocksReclaimed   float64 `json:"blocks_reclaimed"`
}

// Report is one scenario's SLO report — the unit of BENCH_load.json.
type Report struct {
	Scenario        string          `json:"scenario"`
	Description     string          `json:"description,omitempty"`
	Seed            int64           `json:"seed"`
	Nodes           int             `json:"nodes"`
	WallSeconds     float64         `json:"wall_seconds"`
	OpsPlanned      int             `json:"ops_planned"`
	OpsRun          int             `json:"ops_run"`
	OpsOK           int             `json:"ops_ok"`
	ClientErrors    int             `json:"client_errors"`
	OverloadDropped int             `json:"overload_dropped"`
	OpsPerSec       float64         `json:"ops_per_sec"`
	GoodputMBps     float64         `json:"goodput_mbps"`
	Levels          []LevelStats    `json:"levels"`
	Migration       *MigrationCheck `json:"migration,omitempty"`
	Decode          DecodeCheck     `json:"decode_check"`
	ScheduleHash    string          `json:"schedule_hash"`
	Faults          []FaultRecord   `json:"faults,omitempty"`
	Scrape          ScrapeCheck     `json:"scrape_check"`
}

// SLOViolations returns the human-readable list of hard-SLO failures:
// decode not bit-exact always fails; client errors fail only for
// scenarios that promise zero (churn-storm). Empty means the run passed.
func (r *Report) SLOViolations(expectZeroErrors bool) []string {
	var v []string
	if !r.Decode.BitExact {
		v = append(v, fmt.Sprintf("level-0 decode not bit-exact: %s", r.Decode.Err))
	}
	if expectZeroErrors && r.ClientErrors > 0 {
		v = append(v, fmt.Sprintf("%d client-visible errors (scenario promises zero)", r.ClientErrors))
	}
	if !r.Scrape.Consistent {
		v = append(v, fmt.Sprintf("metrics cross-check inconsistent: %s", r.Scrape.Detail))
	}
	return v
}

// Text renders the report as the console summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s (seed %d, %d nodes, %.1fs wall)\n",
		r.Scenario, r.Seed, r.Nodes, r.WallSeconds)
	fmt.Fprintf(&b, "  ops: %d planned, %d run, %d ok, %d errors, %d overload-dropped (%.0f ops/s, %.2f MB/s goodput)\n",
		r.OpsPlanned, r.OpsRun, r.OpsOK, r.ClientErrors, r.OverloadDropped, r.OpsPerSec, r.GoodputMBps)
	fmt.Fprintf(&b, "  %-6s %-4s %8s %8s %8s %8s %8s\n", "level", "op", "count", "errors", "p50ms", "p99ms", "maxms")
	for _, ls := range r.Levels {
		for _, row := range []struct {
			name string
			st   OpStats
		}{{"put", ls.Put}, {"get", ls.Get}} {
			if row.st.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-6d %-4s %8d %8d %8.2f %8.2f %8.2f\n",
				ls.Level, row.name, row.st.Count, row.st.Errors, row.st.P50Ms, row.st.P99Ms, row.st.MaxMs)
		}
	}
	if len(r.Faults) > 0 {
		fmt.Fprintf(&b, "  faults (schedule %s):\n", r.ScheduleHash)
		for _, f := range r.Faults {
			line := fmt.Sprintf("    %7.2fs %-9s node%d", f.FiredAt.Seconds(), f.Kind, f.Node)
			if f.RevertAt < 0 {
				line += " permanent"
			} else {
				line += fmt.Sprintf(" reverted %.2fs", f.RevertedAt.Seconds())
			}
			if f.Err != "" {
				line += " err=" + f.Err
			}
			if f.RevertErr != "" {
				line += " revert-err=" + f.RevertErr
			}
			b.WriteString(line + "\n")
		}
	}
	if m := r.Migration; m != nil {
		fmt.Fprintf(&b, "  migration: %d rounds, %g kicks, %g/%g objects migrated (%g errors), %g regenerated + %g copied blocks, %g stale blocks reclaimed via %g deletes\n",
			m.Rounds, m.Kicks, m.ObjectsMigrated, m.ObjectsPlanned, m.ObjectErrors,
			m.BlocksRegenerated, m.BlocksCopied, m.BlocksReclaimed, m.DeletesIssued)
	}
	decode := "bit-exact"
	if !r.Decode.BitExact {
		decode = "FAILED: " + r.Decode.Err
	}
	fmt.Fprintf(&b, "  decode spot-check: %s (%d blocks read, %d levels, %d level-0 sources)\n",
		decode, r.Decode.BlocksRead, r.Decode.DecodedLevels, r.Decode.Level0Blocks)
	consistent := "consistent"
	if !r.Scrape.Consistent {
		consistent = "INCONSISTENT: " + r.Scrape.Detail
	}
	fmt.Fprintf(&b, "  scrape cross-check: %s (server %g reqs, client %g ok, generator %d ok)\n",
		consistent, r.Scrape.ServerOps, r.Scrape.ClientOpsOK, r.Scrape.GeneratorOK)
	return b.String()
}

// stats folds a latency series into OpStats.
func (s *latSeries) stats() OpStats {
	st := OpStats{Count: len(s.samples), Errors: s.errs}
	if st.Count == 0 {
		return st
	}
	st.ErrorRate = float64(st.Errors) / float64(st.Count)
	sorted := make([]float64, len(s.samples))
	copy(sorted, s.samples)
	sort.Float64s(sorted)
	st.P50Ms = percentile(sorted, 0.50)
	st.P99Ms = percentile(sorted, 0.99)
	st.MaxMs = sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	st.MeanMs = sum / float64(len(sorted))
	return st
}

// percentile reads the nearest-rank percentile from a sorted series.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// snapshot folds the generator's accumulators into report fields.
func (g *generator) snapshot(rep *Report, wall time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep.OverloadDropped = g.dropped
	for lvl := range g.put {
		ls := LevelStats{Level: lvl, Put: g.put[lvl].stats(), Get: g.get[lvl].stats()}
		rep.Levels = append(rep.Levels, ls)
		rep.OpsRun += ls.Put.Count + ls.Get.Count
		rep.ClientErrors += ls.Put.Errors + ls.Get.Errors
	}
	rep.OpsOK = rep.OpsRun - rep.ClientErrors
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.OpsPerSec = float64(rep.OpsRun) / wall.Seconds()
		rep.GoodputMBps = float64(g.bytes) / (1 << 20) / wall.Seconds()
	}
}
