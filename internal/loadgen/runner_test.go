package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// miniScenario is a sub-second steady-state run sized for CI.
func miniScenario(name string, seed int64) Scenario {
	return Scenario{
		Name:           name,
		Seed:           seed,
		Duration:       Duration(700 * time.Millisecond),
		Clients:        16,
		Rate:           150,
		PutFraction:    0.4,
		Objects:        2,
		Blocks:         8,
		PayloadBytes:   256,
		LevelFractions: []float64{0.25, 0.75},
		Tolerance:      1,
	}
}

func testFleet(t *testing.T, n int, withMetrics bool) *ServerFleet {
	t.Helper()
	fleet, err := NewServerFleet(n, withMetrics)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	return fleet
}

func TestRunSteadyStateInProcess(t *testing.T) {
	fleet := testFleet(t, 3, true)
	rep, err := Run(context.Background(), fleet, miniScenario("mini-steady", 7), RunConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsRun == 0 || rep.OpsPlanned == 0 {
		t.Fatalf("no ops ran: %+v", rep)
	}
	if rep.ClientErrors != 0 {
		t.Errorf("%d client errors on a healthy fleet", rep.ClientErrors)
	}
	if !rep.Decode.BitExact {
		t.Errorf("decode spot-check failed: %s", rep.Decode.Err)
	}
	if !rep.Scrape.Consistent {
		t.Errorf("scrape cross-check failed: %s", rep.Scrape.Detail)
	}
	if rep.Scrape.Nodes != 3 || rep.Scrape.ServerOps == 0 {
		t.Errorf("scrape saw %d nodes, %g server ops", rep.Scrape.Nodes, rep.Scrape.ServerOps)
	}
	if v := rep.SLOViolations(true); len(v) != 0 {
		t.Errorf("SLO violations on a healthy run: %v", v)
	}
	// Per-level series must be populated for both levels.
	for _, ls := range rep.Levels {
		if ls.Put.Count+ls.Get.Count == 0 {
			t.Errorf("level %d saw no traffic", ls.Level)
		}
		if ls.Get.Count > 0 && ls.Get.P99Ms < ls.Get.P50Ms {
			t.Errorf("level %d: p99 %v < p50 %v", ls.Level, ls.Get.P99Ms, ls.Get.P50Ms)
		}
	}
	// The report must survive the JSON trip BENCH_load.json takes.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != rep.Scenario || back.OpsOK != rep.OpsOK {
		t.Errorf("report changed over JSON: %+v vs %+v", back, rep)
	}
}

// The churn shape: kill/restart and partition/heal mid-run, with the
// zero-client-visible-errors SLO and a deterministic fault schedule.
func TestRunChurnZeroErrorsAndDeterministicSchedule(t *testing.T) {
	sc := miniScenario("mini-churn", 11)
	sc.ExpectZeroErrors = true
	sc.Faults = []FaultSpec{
		{At: Duration(100 * time.Millisecond), Kind: "kill", Node: -1, For: Duration(200 * time.Millisecond)},
		{At: Duration(250 * time.Millisecond), Kind: "partition", Node: -1, For: Duration(150 * time.Millisecond)},
	}

	var hashes []string
	for round := 0; round < 2; round++ {
		fleet := testFleet(t, 3, false)
		rep, err := Run(context.Background(), fleet, sc, RunConfig{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, rep.ScheduleHash)
		if rep.ClientErrors != 0 {
			t.Errorf("round %d: %d client-visible errors under churn", round, rep.ClientErrors)
		}
		if !rep.Decode.BitExact {
			t.Errorf("round %d: decode spot-check failed: %s", round, rep.Decode.Err)
		}
		if len(rep.Faults) != len(sc.Faults) {
			t.Errorf("round %d: %d fault records for %d faults", round, len(rep.Faults), len(sc.Faults))
		}
		for _, f := range rep.Faults {
			if f.Err != "" || f.RevertErr != "" {
				t.Errorf("round %d: fault %v err=%q revert=%q", round, f.ScheduledFault, f.Err, f.RevertErr)
			}
		}
	}
	if hashes[0] != hashes[1] {
		t.Errorf("same seed, different fault schedules: %s vs %s", hashes[0], hashes[1])
	}
}

// A permanent kill plus a corruption window: level 0 must still decode
// bit-exact from the survivors — the paper's differentiated-persistence
// claim, exercised through the whole stack.
func TestRunPermanentKillStillDecodesLevel0(t *testing.T) {
	sc := miniScenario("mini-perm", 13)
	sc.Faults = []FaultSpec{
		{At: Duration(100 * time.Millisecond), Kind: "kill", Node: -1}, // never restarted
		{At: Duration(200 * time.Millisecond), Kind: "corrupt", Node: -1, For: Duration(150 * time.Millisecond), Prob: 0.05},
	}
	fleet := testFleet(t, 3, false)
	rep, err := Run(context.Background(), fleet, sc, RunConfig{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Decode.BitExact {
		t.Errorf("level-0 decode failed with one node down: %s", rep.Decode.Err)
	}
}

// The grow-fleet shape: traffic rides the consistent-hash ring while a
// spare node joins mid-run and the mover re-homes blocks — zero
// client-visible errors, bit-exact level-0 decode, and visible
// migration work in the report.
func TestRunGrowFleetMigratesUnderLoad(t *testing.T) {
	sc := miniScenario("mini-grow", 17)
	sc.Duration = Duration(1500 * time.Millisecond)
	// Enough objects that with near-certainty at least one lands on the
	// joining node (ring positions depend on the fleet's random ports).
	sc.Objects = 10
	sc.ExpectZeroErrors = true
	sc.Placement = true
	sc.Spares = 1
	sc.Replication = 2
	sc.Migrate = true
	sc.MigrateInterval = Duration(100 * time.Millisecond)
	sc.Faults = []FaultSpec{{At: Duration(400 * time.Millisecond), Kind: "join", Node: -1}}

	// Ring positions come from the fleet's random ports, so on rare
	// geometries every object's replica set already contains both
	// original nodes' successors and the join displaces nothing. A fresh
	// fleet re-rolls the ring, so retry until the mover had work to do
	// (~1.5% no-op probability per attempt).
	var rep *Report
	var m *MigrationCheck
	for attempt := 0; attempt < 3; attempt++ {
		fleet := testFleet(t, 3, true)
		var err error
		rep, err = Run(context.Background(), fleet, sc, RunConfig{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ClientErrors != 0 {
			t.Errorf("%d client-visible errors while the fleet grew", rep.ClientErrors)
		}
		if !rep.Decode.BitExact {
			t.Errorf("decode spot-check failed: %s", rep.Decode.Err)
		}
		if len(rep.Faults) != 1 || rep.Faults[0].Err != "" {
			t.Fatalf("join fault records = %+v", rep.Faults)
		}
		m = rep.Migration
		if m == nil {
			t.Fatal("no migration stats in the report")
		}
		if m.Rounds == 0 {
			t.Error("mover never ran a round")
		}
		if m.Kicks == 0 {
			t.Error("join never kicked the mover")
		}
		if m.ObjectsPlanned > 0 {
			break
		}
		t.Logf("attempt %d: join displaced no objects, re-rolling the ring", attempt)
	}
	if m.ObjectsMigrated == 0 {
		t.Error("nothing migrated after the join")
	}
	if m.BlocksReclaimed == 0 || m.DeletesIssued == 0 {
		t.Errorf("stale copies not reclaimed: %+v", m)
	}
	if v := rep.SLOViolations(true); len(v) != 0 {
		t.Errorf("SLO violations: %v", v)
	}
}

func TestServerFleetKillRestart(t *testing.T) {
	fleet := testFleet(t, 2, false)
	addrs := fleet.Addrs()

	cl, err := store.NewClient(store.ClientConfig{Addr: addrs[0], OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping before kill: %v", err)
	}
	if err := fleet.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Kill(0); err == nil {
		t.Error("double kill succeeded")
	}
	if err := fleet.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Restart(0); err == nil {
		t.Error("double restart succeeded")
	}
	// Same address serves again (fresh client: the old pool may hold a
	// dead conn, which is the client retry layer's job, not the fleet's).
	cl2, err := store.NewClient(store.ClientConfig{Addr: addrs[0], OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Ping(ctx); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	if got := fleet.Addrs(); got[0] != addrs[0] {
		t.Errorf("restart moved the address: %s -> %s", addrs[0], got[0])
	}
}

func TestLoadScenariosFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenarios.json")
	raw, err := json.MarshalIndent(Builtins(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("loaded %d scenarios, want 5", len(got))
	}
	if got[2].Name != "churn-storm" || got[2].Faults[0].Kind != "kill" {
		t.Errorf("scenario 2 = %+v", got[2])
	}
	if got[0].Duration.D() != 10*time.Second {
		t.Errorf("duration round-trip = %v", got[0].Duration.D())
	}

	// Single-object files and bare-seconds durations also load.
	single := filepath.Join(dir, "one.json")
	os.WriteFile(single, []byte(`{"name":"one","seed":1,"duration":1.5,"clients":4,"rate":10,
		"put_fraction":0.5,"objects":1,"blocks":4,"payload_bytes":64,
		"level_fractions":[0.5,0.5],"tolerance":0}`), 0o644)
	one, err := LoadScenarios(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Duration.D() != 1500*time.Millisecond {
		t.Fatalf("single scenario = %+v", one)
	}

	// Invalid scenarios are rejected at load time.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name":"bad","seed":1,"duration":"1s"}`), 0o644)
	if _, err := LoadScenarios(bad); err == nil {
		t.Error("invalid scenario loaded")
	}
}
