package loadgen

import (
	"reflect"
	"testing"
	"time"
)

func TestBuiltinsValidate(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range Builtins() {
		sc := sc
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %s: %v", sc.Name, err)
		}
		names[sc.Name] = true
	}
	for _, want := range []string{"steady-state", "flash-crowd", "churn-storm", "repair-under-load"} {
		if !names[want] {
			t.Errorf("missing builtin scenario %s", want)
		}
		if _, err := Builtin(want); err != nil {
			t.Errorf("Builtin(%s): %v", want, err)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Error("Builtin(nope) succeeded")
	}
}

func TestScenarioValidationRejectsBadFields(t *testing.T) {
	good, _ := Builtin("churn-storm")
	for name, mut := range map[string]func(*Scenario){
		"no name":          func(s *Scenario) { s.Name = "" },
		"zero duration":    func(s *Scenario) { s.Duration = 0 },
		"zero clients":     func(s *Scenario) { s.Clients = 0 },
		"zero rate":        func(s *Scenario) { s.Rate = 0 },
		"put fraction > 1": func(s *Scenario) { s.PutFraction = 1.5 },
		"no levels":        func(s *Scenario) { s.LevelFractions = nil },
		"weight mismatch":  func(s *Scenario) { s.LevelWeights = []float64{1} },
		"bad fault kind":   func(s *Scenario) { s.Faults[0].Kind = "meteor" },
		"corrupt no prob": func(s *Scenario) {
			s.Faults[0] = FaultSpec{At: 0, Kind: "corrupt", Node: 0}
		},
		"partition no heal": func(s *Scenario) {
			s.Faults[0] = FaultSpec{At: 0, Kind: "partition", Node: 0}
		},
	} {
		sc := good
		sc.Faults = append([]FaultSpec(nil), good.Faults...)
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the scenario", name)
		}
	}
}

// Same specs, fleet size, and seed must yield byte-identical schedules —
// the reproducible-chaos acceptance criterion.
func TestBuildScheduleDeterministic(t *testing.T) {
	sc, _ := Builtin("churn-storm")
	a, err := BuildSchedule(sc.Faults, 3, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(sc.Faults, 3, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs, different schedules:\n%v\n%v", a, b)
	}
	if ScheduleHash(a) != ScheduleHash(b) {
		t.Fatal("same schedule, different hashes")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted: %v", a)
		}
	}
	for _, f := range a {
		if f.Node < 0 || f.Node >= 3 {
			t.Fatalf("fault targets node %d of a 3-node fleet", f.Node)
		}
	}
	// A different seed must be able to pick different targets (the "any"
	// node resolution actually uses the seed).
	differs := false
	for seed := int64(100); seed < 120 && !differs; seed++ {
		c, err := BuildSchedule(sc.Faults, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		differs = ScheduleHash(c) != ScheduleHash(a)
	}
	if !differs {
		t.Error("20 different seeds all produced the same schedule")
	}
}

func TestBuildScheduleDefaultsAndErrors(t *testing.T) {
	if _, err := BuildSchedule(nil, 0, 1); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := BuildSchedule([]FaultSpec{{Kind: "kill", Node: 7}}, 3, 1); err == nil {
		t.Error("out-of-range explicit node accepted")
	}
	// A kill with no window is permanent; corrupt with no window pulses.
	sched, err := BuildSchedule([]FaultSpec{
		{At: Duration(time.Second), Kind: "kill", Node: 0},
		{At: Duration(time.Second), Kind: "corrupt", Node: 0, Prob: 0.5},
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].RevertAt >= 0 {
		t.Errorf("windowless kill got revert %v, want permanent", sched[0].RevertAt)
	}
	if sched[1].RevertAt != 2*time.Second {
		t.Errorf("windowless corrupt reverts at %v, want 2s pulse", sched[1].RevertAt)
	}
}

func TestBuildOpsDeterministic(t *testing.T) {
	sc, _ := Builtin("steady-state")
	sc.Duration = Duration(2 * time.Second)
	a, err := BuildOps(&sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildOps(&sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same scenario, different op schedules")
	}
	if len(a) == 0 {
		t.Fatal("no ops generated")
	}
	// Sanity: arrivals are ordered, in range, and roughly at the target
	// rate (Poisson with n~600, so +/-50% is a generous band).
	want := sc.Rate * time.Duration(sc.Duration).Seconds()
	if float64(len(a)) < want/2 || float64(len(a)) > want*2 {
		t.Errorf("%d ops for target %.0f", len(a), want)
	}
	puts := 0
	for i, op := range a {
		if i > 0 && op.At < a[i-1].At {
			t.Fatal("ops not time-ordered")
		}
		if op.At >= sc.Duration.D() || op.Obj >= sc.Objects || op.Level >= len(sc.LevelFractions) {
			t.Fatalf("op out of range: %+v", op)
		}
		if op.Put {
			puts++
		}
	}
	frac := float64(puts) / float64(len(a))
	if frac < sc.PutFraction/2 || frac > sc.PutFraction*2 {
		t.Errorf("put fraction %.2f, want near %.2f", frac, sc.PutFraction)
	}
}

func TestRatePhasesShiftArrivals(t *testing.T) {
	sc, _ := Builtin("flash-crowd")
	sc.Duration = Duration(9 * time.Second)
	ops, err := BuildOps(&sc)
	if err != nil {
		t.Fatal(err)
	}
	// The middle third runs at 10x: it should hold the large majority of
	// arrivals.
	var before, during, after int
	for _, op := range ops {
		switch {
		case op.At < 3*time.Second:
			before++
		case op.At < 6*time.Second:
			during++
		default:
			after++
		}
	}
	if during < 4*before || during < 4*after {
		t.Errorf("flash crowd not visible: %d/%d/%d arrivals per third", before, during, after)
	}
}
