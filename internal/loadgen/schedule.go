package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// ScheduledFault is a FaultSpec resolved against a concrete fleet: the
// target is a real node index, "any" picks have been made, and the
// revert time is explicit. Building the schedule is pure — no wall
// clock, no live randomness — so the same (specs, nodes, seed) triple
// always yields the same schedule; only execution touches the clock.
type ScheduledFault struct {
	At   time.Duration `json:"at"`
	Kind string        `json:"kind"`
	Node int           `json:"node"`
	// RevertAt is when the fault is undone (restart, heal, prob reset);
	// <0 means never (a permanent kill).
	RevertAt time.Duration `json:"revert_at"`
	Prob     float64       `json:"prob,omitempty"`
}

func (f ScheduledFault) String() string {
	if f.RevertAt < 0 {
		return fmt.Sprintf("%v %s node%d (permanent)", f.At, f.Kind, f.Node)
	}
	return fmt.Sprintf("%v %s node%d until %v", f.At, f.Kind, f.Node, f.RevertAt)
}

// BuildSchedule resolves fault specs against a fleet of n nodes. Specs
// with Node == -1 get a seed-deterministic target; targets cycle away
// from the immediately previous pick so back-to-back "any" faults tend
// to hit different nodes (more interesting overlap, still
// deterministic). The result is sorted by At, ties broken by spec
// order.
func BuildSchedule(specs []FaultSpec, nodes int, seed int64) ([]ScheduledFault, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("loadgen: schedule needs at least one node")
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5c3a9d1e))
	out := make([]ScheduledFault, 0, len(specs))
	last := -1
	for i, sp := range specs {
		node := sp.Node
		if node == -1 && sp.Kind != "join" {
			node = rng.Intn(nodes)
			if node == last && nodes > 1 {
				node = (node + 1 + rng.Intn(nodes-1)) % nodes
			}
		}
		if sp.Kind == "join" {
			// A join keeps Node == -1: "the next spare" is resolved by the
			// injector at fire time, because only the runner knows which
			// fleet nodes started outside the ring.
			if node < -1 || node >= nodes {
				return nil, fmt.Errorf("loadgen: fault %d targets node %d of a %d-node fleet", i, sp.Node, nodes)
			}
		} else if node < 0 || node >= nodes {
			return nil, fmt.Errorf("loadgen: fault %d targets node %d of a %d-node fleet", i, sp.Node, nodes)
		}
		if node >= 0 {
			last = node
		}
		sf := ScheduledFault{At: sp.At.D(), Kind: sp.Kind, Node: node, Prob: sp.Prob}
		switch {
		case sp.Kind == "join":
			// A join is never reverted: the ring keeps its new member.
			sf.RevertAt = -1
		case sp.For > 0:
			sf.RevertAt = sp.At.D() + sp.For.D()
		case sp.Kind == "kill":
			sf.RevertAt = -1
		default:
			// corrupt/delay with no window default to a 1s pulse so a
			// forgotten "for" cannot poison the rest of the run.
			sf.RevertAt = sp.At.D() + time.Second
		}
		out = append(out, sf)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// ScheduleHash fingerprints a schedule. Two runs with the same scenario
// produce the same hash — the determinism acceptance check — and the
// hash lands in the report so drift is visible across machines.
func ScheduleHash(sched []ScheduledFault) string {
	h := fnv.New64a()
	for _, f := range sched {
		fmt.Fprintf(h, "%d|%s|%d|%d|%g\n", f.At.Nanoseconds(), f.Kind, f.Node, f.RevertAt.Nanoseconds(), f.Prob)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
