package loadgen

import (
	"context"
	"sync"
	"time"
)

// Injector is what the chaos controller drives. Kill and Restart act on
// real daemons (a process or an in-process server); Join acts on the
// placement ring (node -1 = the injector's next unjoined spare); the
// rest act on the generator's own transport via store.FaultDialer,
// which is where partitions, corruption, and delay live from a client's
// point of view.
type Injector interface {
	Kill(node int) error
	Restart(node int) error
	Join(node int) error
	Partition(node int)
	Heal(node int)
	SetCorrupt(prob float64)
	SetDelay(prob float64)
}

// FaultRecord is one executed fault in the report: what the schedule
// said, when it actually fired and reverted on the wall clock, and any
// execution error (a kill finding the process already dead, etc.).
type FaultRecord struct {
	ScheduledFault
	FiredAt    time.Duration `json:"fired_at"`
	RevertedAt time.Duration `json:"reverted_at,omitempty"`
	Err        string        `json:"err,omitempty"`
	RevertErr  string        `json:"revert_err,omitempty"`
}

// Controller executes a built schedule against an Injector on the wall
// clock. Run blocks until every fault has fired AND every revert has
// completed (or the context is cancelled), so callers get the
// no-leaked-goroutines guarantee for free: when Run returns, nothing the
// controller started is still running.
type Controller struct {
	sched []ScheduledFault
	inj   Injector

	mu   sync.Mutex
	recs []FaultRecord
}

func NewController(sched []ScheduledFault, inj Injector) *Controller {
	return &Controller{sched: sched, inj: inj}
}

// Run executes the schedule relative to start. Faults whose At has
// already passed fire immediately (in order). Cancelling ctx stops
// waiting but still executes pending reverts immediately — a cancelled
// chaos run must not strand a node dead or partitioned, since the same
// fleet is then used for the decode spot-check.
func (c *Controller) Run(ctx context.Context, start time.Time) []FaultRecord {
	var reverts sync.WaitGroup
	for _, f := range c.sched {
		if !sleepUntil(ctx, start.Add(f.At)) {
			// Context gone before this fault fired: skip it entirely.
			continue
		}
		rec := FaultRecord{ScheduledFault: f, FiredAt: time.Since(start)}
		if err := c.apply(f); err != nil {
			rec.Err = err.Error()
		}
		if f.RevertAt < 0 {
			c.record(rec)
			continue
		}
		reverts.Add(1)
		go func(f ScheduledFault, rec FaultRecord) {
			defer reverts.Done()
			sleepUntil(ctx, start.Add(f.RevertAt)) // on cancel: revert now
			if err := c.revert(f); err != nil {
				rec.RevertErr = err.Error()
			}
			rec.RevertedAt = time.Since(start)
			c.record(rec)
		}(f, rec)
	}
	reverts.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	sortRecords(c.recs)
	out := make([]FaultRecord, len(c.recs))
	copy(out, c.recs)
	return out
}

func (c *Controller) apply(f ScheduledFault) error {
	switch f.Kind {
	case "kill":
		return c.inj.Kill(f.Node)
	case "join":
		return c.inj.Join(f.Node)
	case "partition":
		c.inj.Partition(f.Node)
	case "corrupt":
		c.inj.SetCorrupt(f.Prob)
	case "delay":
		c.inj.SetDelay(f.Prob)
	}
	return nil
}

func (c *Controller) revert(f ScheduledFault) error {
	switch f.Kind {
	case "kill":
		return c.inj.Restart(f.Node)
	case "partition":
		c.inj.Heal(f.Node)
	case "corrupt":
		c.inj.SetCorrupt(0)
	case "delay":
		c.inj.SetDelay(0)
	}
	return nil
}

func (c *Controller) record(r FaultRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

func sortRecords(recs []FaultRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].At < recs[j-1].At; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// sleepUntil sleeps until the deadline or ctx cancellation; it reports
// whether the deadline was actually reached.
func sleepUntil(ctx context.Context, deadline time.Time) bool {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
