package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cliutil"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mover"
	"repro/internal/repair"
	"repro/internal/store"
)

// RunConfig tunes one scenario execution against a fleet.
type RunConfig struct {
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// OpTimeout bounds each client attempt (default 2s) — short enough
	// that a killed node's ops fail over inside the open-loop window.
	OpTimeout time.Duration
	// SkipScrape disables the HTTP metrics cross-check (fleets without
	// observability addresses get it automatically).
	SkipScrape bool
}

func (rc *RunConfig) logf(format string, args ...any) {
	if rc.Logf != nil {
		rc.Logf(format, args...)
	}
}

// Run executes one scenario against a fleet and returns its SLO report.
// The fleet is handed back healthy: every transport fault is cleared and
// every non-permanent kill restarted before Run returns.
func Run(ctx context.Context, fleet Fleet, sc Scenario, rc RunConfig) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	addrs := fleet.Addrs()
	if sc.Tolerance >= len(addrs) {
		return nil, fmt.Errorf("loadgen: tolerance %d needs more than %d nodes", sc.Tolerance, len(addrs))
	}
	if rc.OpTimeout <= 0 {
		rc.OpTimeout = 2 * time.Second
	}

	// The code under test: one PLC encoder per object over deterministic
	// sources, so the decode spot-check can compare bytes.
	sizes, err := cliutil.FractionsToSizes(sc.LevelFractions, sc.Blocks)
	if err != nil {
		return nil, fmt.Errorf("loadgen: level_fractions: %w", err)
	}
	levels, err := core.NewLevels(sizes...)
	if err != nil {
		return nil, err
	}
	encoders := make([]*core.Encoder, sc.Objects)
	objs := make([]core.ObjectID, sc.Objects)
	var spotSources [][]byte // object 0's source payloads, kept for the bit-exact check
	for i := 0; i < sc.Objects; i++ {
		srcRng := rand.New(rand.NewSource(sc.Seed + int64(i)*7919))
		sources := make([][]byte, sc.Blocks)
		for j := range sources {
			sources[j] = make([]byte, sc.PayloadBytes)
			srcRng.Read(sources[j])
		}
		if i == 0 {
			spotSources = sources
		}
		enc, err := core.NewEncoder(core.PLC, levels, sources)
		if err != nil {
			return nil, err
		}
		encoders[i] = enc
		objs[i] = core.NamedObject(fmt.Sprintf("load/%s/%d", sc.Name, i))
	}

	// All traffic flows through one FaultDialer — the chaos controller's
	// transport hooks — and one client registry for the scrape check.
	dialer := store.NewFaultDialer(nil, store.FaultConfig{Seed: sc.Seed})
	clientReg := metrics.NewRegistry()
	dial := func(a string, seedOff int64) (*store.Client, error) {
		return store.NewClient(store.ClientConfig{
			Addr:        a,
			Dialer:      dialer,
			DialTimeout: time.Second,
			OpTimeout:   rc.OpTimeout,
			Retry:       store.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
			Seed:        sc.Seed + seedOff,
			Metrics:     clientReg,
		})
	}

	// The placement regime under test: a flat replica set over the whole
	// fleet, or (Placement) the consistent-hash ring over the fleet minus
	// its spares, which join faults then grow mid-run.
	var (
		target Target
		repl   *store.Replicated
		placed *store.Placed
	)
	if sc.Placement {
		ring := len(addrs) - sc.Spares
		if ring <= sc.Tolerance {
			return nil, fmt.Errorf("loadgen: %d spares leave a %d-node ring for tolerance %d", sc.Spares, ring, sc.Tolerance)
		}
		ringClients := make([]*store.Client, ring)
		for i := 0; i < ring; i++ {
			if ringClients[i], err = dial(addrs[i], int64(i)); err != nil {
				return nil, err
			}
		}
		placed, err = store.NewPlaced(ringClients, levels.Count(), store.PlacedConfig{
			Replication: sc.Replication,
			Tolerance:   sc.Tolerance,
			MinWrites:   1,
			// Joined spares dial through the same fault-injected transport
			// and metrics registry as the founding members.
			NewClient: func(addr string) (*store.Client, error) { return dial(addr, int64(len(addrs))) },
			Metrics:   clientReg,
		})
		if err != nil {
			return nil, err
		}
		defer placed.Close()
		target = placedTarget{placed}
	} else {
		clients := make([]*store.Client, len(addrs))
		for i, a := range addrs {
			if clients[i], err = dial(a, int64(i)); err != nil {
				return nil, err
			}
		}
		repl, err = store.NewReplicated(clients, levels.Count(), store.ReplicatedConfig{
			Tolerance: sc.Tolerance,
			MinWrites: 1,
			Metrics:   clientReg,
		})
		if err != nil {
			return nil, err
		}
		defer repl.Close()
		target = repl
	}

	// Baseline: every object gets a decodable block population before the
	// clock starts, so gets work from op one and the spot-check has a
	// floor even if the run is all gets.
	seedBlocks := sc.SeedBlocks
	if seedBlocks <= 0 {
		seedBlocks = sc.Blocks * 8 / 5
	}
	seedDist := core.NewUniformDistribution(levels.Count())
	for i := range objs {
		rng := rand.New(rand.NewSource(sc.Seed ^ int64(i+1)))
		blocks, err := encoders[i].EncodeBatch(rng, seedDist, seedBlocks)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			b.Object = objs[i]
		}
		if _, err := target.PutAll(ctx, blocks); err != nil {
			return nil, fmt.Errorf("loadgen: seeding object %d: %w", i, err)
		}
	}
	rc.logf("seeded %d objects x %d blocks across %d nodes", sc.Objects, seedBlocks, len(addrs))

	// Chaos: schedule built pure, executed on the wall clock alongside
	// the generator.
	schedule, err := BuildSchedule(sc.Faults, len(addrs), sc.Seed)
	if err != nil {
		return nil, err
	}
	injector := newFleetInjector(fleet, dialer)
	if placed != nil {
		injector.enableJoins(placed.Join, sc.Spares)
	}
	controller := NewController(schedule, injector)

	var repairer *repair.Daemon
	if sc.Repair {
		rcfg := repair.Config{
			Scheme:      core.PLC,
			Levels:      levels,
			Dist:        seedDist,
			TotalBlocks: seedBlocks,
			Interval:    sc.RepairInterval.D(),
			Seed:        sc.Seed,
			Metrics:     clientReg,
		}
		if placed != nil {
			repairer, err = repair.NewObject(placed, objs[0], rcfg)
		} else {
			rcfg.Object = objs[0]
			repairer, err = repair.New(repl, rcfg)
		}
		if err != nil {
			return nil, err
		}
		repairer.Start()
	}

	// Migration: the mover re-homes blocks whenever the ring grows,
	// kicked synchronously by every membership change and throttled so
	// it cannot starve the foreground traffic it shares clients with.
	var mv *mover.Mover
	if sc.Migrate {
		mv, err = mover.New(placed, mover.Config{
			Scheme:      core.PLC,
			Levels:      levels,
			Dist:        seedDist,
			TotalBlocks: seedBlocks,
			Interval:    sc.MigrateInterval.D(),
			RateLimit:   sc.MigrateRateBytes,
			Seed:        sc.Seed,
			Metrics:     clientReg,
		})
		if err != nil {
			return nil, err
		}
		placed.SetMembershipHook(func(store.MembershipChange) { mv.Kick() })
		mv.Start()
	}

	ops, err := BuildOps(&sc)
	if err != nil {
		return nil, err
	}
	rc.logf("running %s: %d ops over %v, %d workers, %d faults", sc.Name, len(ops), sc.Duration.D(), sc.Clients, len(schedule))

	gen := newGenerator(&sc, target, encoders, objs)
	start := time.Now()
	chaosCtx, stopChaos := context.WithCancel(ctx)
	recsCh := make(chan []FaultRecord, 1)
	go func() { recsCh <- controller.Run(chaosCtx, start) }()

	gen.run(ctx, ops, start)
	wall := time.Since(start)

	// Generator done: cancel the chaos clock so outstanding reverts fire
	// immediately, then wait for the controller (its return is the
	// no-leaked-goroutines barrier).
	stopChaos()
	recs := <-recsCh
	if repairer != nil {
		stopCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		repairer.Stop(stopCtx)
		cancel()
	}
	if mv != nil {
		stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := mv.Stop(stopCtx); err != nil {
			rc.logf("mover stop: %v", err)
		}
		cancel()
	}
	// Belt and braces: leave the transport clean even if a revert failed.
	for _, a := range addrs {
		dialer.Heal(a)
	}
	dialer.SetCorruptProb(0)
	dialer.SetDelayProb(0)

	rep := &Report{
		Scenario:     sc.Name,
		Description:  sc.Description,
		Seed:         sc.Seed,
		Nodes:        len(addrs),
		OpsPlanned:   len(ops),
		Faults:       recs,
		ScheduleHash: ScheduleHash(schedule),
	}
	gen.snapshot(rep, wall)
	if mv != nil {
		rep.Migration = migrationCheck(mv.Rounds(), clientReg)
	}
	rep.Decode = spotCheck(ctx, target, objs[0], levels, spotSources, sc.Seed, sc.PayloadBytes)
	rep.Scrape = scrapeCheck(ctx, fleet, clientReg, rep.OpsOK, schedule, rc)
	rc.logf("%s done: %d/%d ops ok, decode bit-exact=%v", sc.Name, rep.OpsOK, rep.OpsRun, rep.Decode.BitExact)
	return rep, nil
}

// spotCheck collects the spot-check object from the surviving fleet and
// verifies the level-0 sources decode byte-identical to what the
// generator encoded from — the paper's core promise under churn.
func spotCheck(ctx context.Context, target Target, obj core.ObjectID, levels *core.Levels, sources [][]byte, seed int64, payloadLen int) DecodeCheck {
	dc := DecodeCheck{Object: obj.String(), Level0Blocks: levels.Size(0)}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	blocks, err := target.CollectObject(cctx, obj, levels.Count()-1)
	if err != nil {
		dc.Err = fmt.Sprintf("collect: %v", err)
		return dc
	}
	dc.BlocksRead = len(blocks)
	res, dec, err := collect.Run(rand.New(rand.NewSource(seed)), core.PLC, levels, blocks, collect.Options{
		Context:      cctx,
		TargetLevels: 1,
		PayloadLen:   payloadLen,
	})
	if err != nil {
		dc.Err = fmt.Sprintf("decode: %v", err)
		return dc
	}
	dc.DecodedLevels = res.DecodedLevels
	if res.DecodedLevels < 1 {
		dc.Err = fmt.Sprintf("level 0 undecodable from %d blocks (%d innovative)", len(blocks), res.Innovative)
		return dc
	}
	got := dec.Sources()
	for i := 0; i < levels.Size(0); i++ {
		if !bytes.Equal(got[i], sources[i]) {
			dc.Err = fmt.Sprintf("level-0 source %d differs from original", i)
			return dc
		}
	}
	dc.BitExact = true
	return dc
}

// migrationCheck folds the mover's cumulative counters out of the
// shared client registry into the report — the registry is the only
// place per-round reports accumulate across the whole run.
func migrationCheck(rounds int, reg *metrics.Registry) *MigrationCheck {
	mc := &MigrationCheck{Rounds: rounds}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return mc
	}
	samples, err := metrics.ParsePromText(&buf)
	if err != nil {
		return mc
	}
	mc.RoundErrors = samples.Value("mover_round_errors_total")
	mc.Kicks = samples.Value("mover_kicks_total")
	mc.ObjectsPlanned = samples.Value("mover_objects_planned_total")
	mc.ObjectsMigrated = samples.Value("mover_objects_migrated_total")
	mc.ObjectErrors = samples.Value("mover_object_errors_total")
	mc.BlocksRegenerated = samples.Value("mover_blocks_regenerated_total")
	mc.BlocksCopied = samples.Value("mover_blocks_copied_total")
	mc.DeletesIssued = samples.Value("mover_deletes_issued_total")
	mc.BlocksReclaimed = samples.Value("mover_blocks_reclaimed_total")
	return mc
}

// scrapeCheck cross-validates the generator's own success count against
// the client registry and each daemon's scraped request totals. Kill
// faults may reset a process-backed daemon's registry, so the
// server-side bound only applies to kill-free schedules.
func scrapeCheck(ctx context.Context, fleet Fleet, clientReg *metrics.Registry, genOK int, schedule []ScheduledFault, rc RunConfig) ScrapeCheck {
	sck := ScrapeCheck{GeneratorOK: genOK}

	var buf bytes.Buffer
	if err := clientReg.WritePrometheus(&buf); err == nil {
		if samples, err := metrics.ParsePromText(&buf); err == nil {
			sck.ClientOpsOK = samples.Value("store_client_ops_ok_total")
		}
	}

	hasKills := false
	dead := map[int]bool{}
	for _, f := range schedule {
		if f.Kind == "kill" {
			hasKills = true
			if f.RevertAt < 0 {
				// A permanent kill leaves this node down at scrape time by
				// design; its endpoint refusing connections is not a finding.
				dead[f.Node] = true
			}
		}
	}
	maddrs := fleet.MetricsAddrs()
	scraped := false
	for node, a := range maddrs {
		if a == "" || rc.SkipScrape || dead[node] {
			continue
		}
		sck.Nodes++
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		samples, err := metrics.Scrape(sctx, a)
		cancel()
		if err != nil {
			sck.ScrapeErrors++
			sck.Detail = fmt.Sprintf("scrape %s: %v", a, err)
			continue
		}
		scraped = true
		sck.ServerOps += samples.SumPrefix("store_server_requests_total")
	}

	switch {
	case sck.ClientOpsOK < float64(genOK):
		sck.Detail = fmt.Sprintf("client registry saw %g ok ops, generator counted %d", sck.ClientOpsOK, genOK)
	case sck.ScrapeErrors > 0:
		// Detail already set by the failing scrape.
	case scraped && !hasKills && sck.ServerOps < float64(genOK):
		sck.Detail = fmt.Sprintf("fleet served %g requests, generator completed %d ops", sck.ServerOps, genOK)
	default:
		sck.Consistent = true
	}
	return sck
}
