package prlc

import (
	"context"
	"encoding"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestErrDisconnectedIs pins the typed-error contract: an impossible
// deployment fails with a sentinel callers can branch on.
func TestErrDisconnectedIs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, _, err := NewSensorNetwork(rng, 40, 0.01)
	if err == nil {
		t.Fatal("a 0.01-radius 40-node deployment should not connect")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want errors.Is ErrDisconnected", err)
	}
}

// TestCodedBlockBinaryMarshaler pins the standard-serialization contract
// on the exported type.
func TestCodedBlockBinaryMarshaler(t *testing.T) {
	var b CodedBlock
	var _ encoding.BinaryMarshaler = &b
	var _ encoding.BinaryUnmarshaler = &b
	if err := b.UnmarshalBinary([]byte("garbage")); !errors.Is(err, ErrWireFormat) {
		t.Fatalf("err = %v, want errors.Is ErrWireFormat", err)
	}
	src := &CodedBlock{Level: 1, Coeff: []byte{0, 2, 3}, Payload: []byte{7}}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CodedBlock
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Level != 1 || string(back.Coeff) != string(src.Coeff) || string(back.Payload) != string(src.Payload) {
		t.Fatalf("round trip drifted: %+v", back)
	}
}

// TestFacadeStoreRoundTrip exercises the full store surface through the
// facade: replicated put, a partitioned replica, heal, collect, decode.
func TestFacadeStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	levels, err := NewLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 16)
		rng.Read(sources[i])
	}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := enc.EncodeBatch(rng, UniformDistribution(2), 24)
	if err != nil {
		t.Fatal(err)
	}

	fault := NewFaultDialer(nil, FaultConfig{Seed: 5})
	var servers []*StoreServer
	var clients []*StoreClient
	for i := 0; i < 3; i++ {
		srv, err := NewStoreServer(StoreServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
		cl, err := NewStoreClient(StoreClientConfig{
			Addr:   srv.Addr(),
			Dialer: fault,
			Retry:  StoreRetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		servers = append(servers, srv)
		clients = append(clients, cl)
	}
	repl, err := NewReplicatedStore(clients, levels.Count(), ReplicatedStoreConfig{Tolerance: 1})
	if err != nil {
		t.Fatal(err)
	}

	fault.Partition(servers[2].Addr())
	if _, err := repl.PutAll(ctx, blocks); err != nil {
		t.Fatalf("puts during a partition must be absorbed: %v", err)
	}
	fault.Heal(servers[2].Addr())

	survived, err := repl.Collect(ctx, -1)
	if err != nil {
		t.Fatal(err)
	}
	res, dec, err := Collect(rng, PLC, levels, survived, CollectOptions{Context: ctx, PayloadLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedLevels < 1 {
		t.Fatalf("critical level lost: %+v", res)
	}
	got, err := dec.Source(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(sources[0]) {
		t.Fatal("critical block corrupted")
	}

	// Context plumbing: a canceled collection run stops with ctx.Err().
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := Collect(rng, PLC, levels, survived, CollectOptions{Context: cctx, PayloadLen: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Collect = %v, want context.Canceled", err)
	}

	// Unreachable fleet: typed unavailability.
	dead, err := NewStoreClient(StoreClientConfig{
		Addr:  "127.0.0.1:1",
		Retry: StoreRetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	deadRepl, err := NewReplicatedStore([]*StoreClient{dead}, levels.Count(), ReplicatedStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deadRepl.Collect(ctx, -1); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("collect from dead fleet = %v, want ErrStoreUnavailable", err)
	}
}
