// Package prlc is a Go implementation of Priority Random Linear Codes for
// differentiated data persistence in autonomous networks (Lin, Li, Liang —
// ICDCS 2007).
//
// Measurement data produced inside a P2P overlay or sensor network is
// partitioned into priority levels and stored within the network itself as
// coded blocks. Unlike classic Random Linear Codes, whose decoding is all
// or nothing, the two priority schemes allow partial recovery in priority
// order when churn and failures leave too few blocks for full recovery:
//
//   - SLC (Stacked Linear Codes) codes each priority level independently;
//   - PLC (Progressive Linear Codes) codes level k over all blocks of
//     levels 1..k, decoding progressively via incremental Gauss–Jordan
//     elimination and strictly dominating SLC.
//
// The package exposes six layers:
//
//   - Coding: Levels, Encoder, Decoder, CodedBlock — encode source blocks
//     into coded blocks and partially decode in priority order.
//   - Analysis: ExpectedDecodedLevels and DecodingCurve — the Sec. 3.3
//     numerical model of decoding performance.
//   - Design: DesignDistribution — the Sec. 3.4 feasibility solver that
//     turns decoding constraints into a priority distribution.
//   - Protocol: Deployment plus the GPSR and Chord transports — the
//     Sec. 4 pre-distribution protocol with decentralized encoding
//     (c ← c + βx), O(ln N) fanout, and two-choices load balancing.
//   - Store: StoreServer, StoreClient and ReplicatedStore — a real-
//     sockets block store where the replication factor decreases with
//     priority level, so the critical prefix survives more node losses.
//   - Placement: ObjectID, PlacedStore and GossipMonitor — an
//     object-keyed namespace whose per-object replica sets are resolved
//     by consistent hashing over a ring, with membership driven by a
//     failure detector, so many objects share one dynamic fleet.
//   - Repair: Recombine, AuditStore and RepairDaemon — decode-free
//     regeneration of redundancy lost to churn, by randomly recombining
//     surviving coded blocks, most critical level first.
//   - Load: LoadScenario, ChaosController and RunLoadScenario — an
//     open-loop load generator plus a wall-clock fault scheduler that
//     pushes a live fleet through named chaos scenarios and reports
//     per-level latency SLOs, goodput and a bit-exact decode check.
//
// Everything is deterministic given explicit *rand.Rand seeds.
package prlc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/chord"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/feasibility"
	"repro/internal/geom"
	"repro/internal/gossip"
	"repro/internal/gpsr"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/predist"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/trace"
)

// Typed errors. Every sentinel works with errors.Is/errors.As, so
// callers branch on failure modes instead of matching message strings.
var (
	// ErrDisconnected reports that NewSensorNetwork could not sample a
	// connected deployment; increase the radio range or node count.
	ErrDisconnected = errors.New("prlc: could not sample a connected deployment")
	// ErrWireFormat reports a malformed CodedBlock wire encoding
	// (CodedBlock.UnmarshalBinary and everything built on it).
	ErrWireFormat = core.ErrWireFormat
	// ErrCorruptFrame reports store-frame corruption caught by CRC32.
	ErrCorruptFrame = store.ErrCorruptFrame
	// ErrStoreUnavailable reports that a block store (or too many of its
	// replicas) could not be reached even after retries.
	ErrStoreUnavailable = store.ErrStoreUnavailable
	// ErrDegenerateInputs reports a recombination sample that spans no
	// information (every coefficient vector is zero).
	ErrDegenerateInputs = core.ErrDegenerateInputs
)

// Coding layer.
type (
	// Levels is the priority structure: N source blocks partitioned into
	// levels of descending importance.
	Levels = core.Levels
	// Scheme selects RLC, SLC or PLC.
	Scheme = core.Scheme
	// PriorityDistribution is the per-level share of coded blocks.
	PriorityDistribution = core.PriorityDistribution
	// CodedBlock is one encoded unit stored in the network.
	CodedBlock = core.CodedBlock
	// Encoder generates coded blocks for a scheme and level structure.
	Encoder = core.Encoder
	// Decoder partially decodes coded blocks in priority order.
	Decoder = core.Decoder
	// EncoderOption customizes an Encoder (see WithSparsity).
	EncoderOption = core.EncoderOption
)

// Coding schemes.
const (
	// RLC is the all-or-nothing Random Linear Code baseline.
	RLC = core.RLC
	// SLC is the Stacked Linear Code (independent per-level coding).
	SLC = core.SLC
	// PLC is the Progressive Linear Code (prefix coding, progressive
	// decoding).
	PLC = core.PLC
)

// NewLevels constructs a priority structure from per-level block counts
// in descending importance.
func NewLevels(sizes ...int) (*Levels, error) { return core.NewLevels(sizes...) }

// UniformLevels returns n levels of perLevel blocks each.
func UniformLevels(n, perLevel int) (*Levels, error) { return core.UniformLevels(n, perLevel) }

// ParseScheme converts "RLC", "SLC" or "PLC" to a Scheme.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// UniformDistribution returns the uniform priority distribution over n
// levels.
func UniformDistribution(n int) PriorityDistribution { return core.NewUniformDistribution(n) }

// NewEncoder constructs an encoder over the given source payloads (nil
// for coefficient-only experiments).
func NewEncoder(scheme Scheme, levels *Levels, sources [][]byte, opts ...EncoderOption) (*Encoder, error) {
	return core.NewEncoder(scheme, levels, sources, opts...)
}

// NewDecoder constructs a partial decoder.
func NewDecoder(scheme Scheme, levels *Levels, payloadLen int) (*Decoder, error) {
	return core.NewDecoder(scheme, levels, payloadLen)
}

// Stream couples a decoder with in-order payload delivery to an
// io.Writer — the streaming face of progressive decoding.
type Stream = core.Stream

// NewStream constructs a streaming decoder writing decoded prefix
// payloads to sink as coded blocks arrive.
func NewStream(scheme Scheme, levels *Levels, payloadLen int, sink io.Writer) (*Stream, error) {
	return core.NewStream(scheme, levels, payloadLen, sink)
}

// WithSparsity bounds each coded block to d nonzero coefficients.
func WithSparsity(d int) EncoderOption { return core.WithSparsity(d) }

// WithBand draws each coded block's coefficients as a contiguous band of
// width w inside the block's support (the perpetual-codes generator).
func WithBand(w int) EncoderOption { return core.WithBand(w) }

// LogSparsity returns the 3·ln(N) coefficient budget of the sparse-code
// result the protocol relies on.
func LogSparsity(n int) int { return core.LogSparsity(n) }

// Sparse and chunked coding layer.
type (
	// SparseCoeff is the sparse coefficient representation coded blocks
	// carry end-to-end (index/value pairs, canonical form).
	SparseCoeff = core.SparseCoeff
	// Coding selects the coefficient generator (dense, sparse, band,
	// chunked, or auto by generation size).
	Coding = core.Coding
	// ChunkLayout is the overlapping chunk cover of a large object.
	ChunkLayout = core.ChunkLayout
	// ChunkedEncoder codes one chunk at a time (expander chunked codes).
	ChunkedEncoder = core.ChunkedEncoder
	// ChunkedDecoder decodes chunk-coded blocks through one global sparse
	// elimination, so overlap columns rescue starved chunks for free.
	ChunkedDecoder = core.ChunkedDecoder
)

// Coding selectors.
const (
	CodingAuto    = core.CodingAuto
	CodingDense   = core.CodingDense
	CodingSparse  = core.CodingSparse
	CodingBand    = core.CodingBand
	CodingChunked = core.CodingChunked
)

// ParseCoding parses a -coding flag value ("auto", "dense", "sparse",
// "band" or "chunked").
func ParseCoding(s string) (Coding, error) { return core.ParseCoding(s) }

// AutoCoding resolves CodingAuto for a generation of n source blocks.
func AutoCoding(n int) Coding { return core.AutoCoding(n) }

// NewChunkLayout builds an overlapping chunk cover of total source
// blocks: uniform chunks of the given size, consecutive chunks sharing
// overlap columns.
func NewChunkLayout(total, size, overlap int) (*ChunkLayout, error) {
	return core.NewChunkLayout(total, size, overlap)
}

// NewChunkedEncoder builds an expander-chunked encoder over the layout.
func NewChunkedEncoder(layout *ChunkLayout, sources [][]byte) (*ChunkedEncoder, error) {
	return core.NewChunkedEncoder(layout, sources)
}

// NewChunkedDecoder builds the matching global sparse-elimination decoder.
func NewChunkedDecoder(layout *ChunkLayout, payloadLen int) (*ChunkedDecoder, error) {
	return core.NewChunkedDecoder(layout, payloadLen)
}

// Analysis layer.

// AnalysisResult is the analytical decoding performance at one point:
// E(X) plus the per-level survival probabilities Pr(X ≥ k).
type AnalysisResult = analysis.Result

// ExpectedDecodedLevels evaluates the Sec. 3.3 model: the expected number
// of decoded priority levels from m randomly accumulated coded blocks.
func ExpectedDecodedLevels(scheme Scheme, levels *Levels, p PriorityDistribution, m int) (AnalysisResult, error) {
	return analysis.Eval(scheme, levels, p, m)
}

// DecodingCurve evaluates the model over a sweep of block counts.
func DecodingCurve(scheme Scheme, levels *Levels, p PriorityDistribution, ms []int) ([]AnalysisResult, error) {
	return analysis.Curve(scheme, levels, p, ms)
}

// MinBlocks returns the smallest number of coded blocks from which the
// first k levels decode with probability at least prob (the provisioning
// dual of the decoding curve). maxM bounds the search; 0 means 4N.
func MinBlocks(scheme Scheme, levels *Levels, p PriorityDistribution, k int, prob float64, maxM int) (int, error) {
	return analysis.MinBlocks(scheme, levels, p, k, prob, maxM)
}

// Design layer.
type (
	// DecodingConstraint is one (M, k) requirement: from M coded blocks,
	// expect at least k decoded levels.
	DecodingConstraint = feasibility.Constraint
	// DesignProblem is a full Sec. 3.4 feasibility instance.
	DesignProblem = feasibility.Problem
	// DesignOptions tunes the feasibility search.
	DesignOptions = feasibility.Options
	// DesignSolution is the solver outcome.
	DesignSolution = feasibility.Solution
)

// DesignDistribution searches for a priority distribution satisfying the
// given decoding constraints (and, when alpha > 0, the full-recovery
// constraint Pr(X_{αN} = n) > 1−ε).
func DesignDistribution(prob DesignProblem, opts DesignOptions) (DesignSolution, error) {
	return feasibility.Solve(prob, opts)
}

// Utility extension — the "less stringent priority model" the paper
// defers: per-level utilities replace strict priority, and the
// distribution is chosen to maximize expected utility.
type (
	// Utility assigns a marginal utility to each priority level.
	Utility = feasibility.Utility
	// OptimizeProblem is a utility-maximization design instance.
	OptimizeProblem = feasibility.OptimizeProblem
	// OptimizeSolution is the utility-maximization outcome.
	OptimizeSolution = feasibility.OptimizeSolution
)

// OptimizeDistribution maximizes E[U] = Σ_k u_k·Pr(X ≥ k) over the
// simplex, subject to any constraints attached to the problem.
func OptimizeDistribution(prob OptimizeProblem, opts DesignOptions) (OptimizeSolution, error) {
	return feasibility.Optimize(prob, opts)
}

// GeometricUtility returns u_k = base^k — strict priority as base → 0,
// volume maximization at base = 1.
func GeometricUtility(n int, base float64) (Utility, error) {
	return feasibility.GeometricUtility(n, base)
}

// ProportionalUtility weights each level by its block count.
func ProportionalUtility(l *Levels) Utility { return feasibility.ProportionalUtility(l) }

// Protocol layer.
type (
	// Point is a location in the unit square.
	Point = geom.Point
	// Graph is a geometric connectivity graph.
	Graph = geom.Graph
	// GeoRouter is a GPSR router over a sensor deployment.
	GeoRouter = gpsr.Router
	// ChordRing is a Chord DHT over a P2P population.
	ChordRing = chord.Ring
	// Transport abstracts the routing substrate for pre-distribution.
	Transport = predist.Transport
	// DeployConfig parameterizes a pre-distribution deployment.
	DeployConfig = predist.Config
	// Deployment is the network-wide state of one pre-distribution run.
	Deployment = predist.Deployment
	// DeployStats is the dissemination bandwidth cost.
	DeployStats = predist.Stats
	// CollectOptions controls a collection run.
	CollectOptions = collect.Options
	// CollectResult summarizes a collection run.
	CollectResult = collect.Result
)

// Measurement-data layer: synthetic sensor fields and the multi-resolution
// prioritization the strict priority model motivates (coarse levels are
// the important ones; every recovered level sharpens the reconstruction).
type (
	// SensorField is a smooth synthetic scalar field over the unit square.
	SensorField = trace.Field
	// ResolutionPyramid is a multi-resolution decomposition of a grid.
	ResolutionPyramid = trace.Pyramid
	// BlockLayout maps pyramid levels onto prioritized source blocks.
	BlockLayout = trace.BlockLayout
)

// NewSensorField samples a random field with the given number of Gaussian
// bumps.
func NewSensorField(rng *rand.Rand, bumps int) (*SensorField, error) {
	return trace.NewField(rng, bumps)
}

// BuildPyramid decomposes a res×res grid (res a power of two) into a
// resolution pyramid whose levels align with coding priority levels.
func BuildPyramid(grid []float64, res int) (*ResolutionPyramid, error) {
	return trace.BuildPyramid(grid, res)
}

// PyramidFromBlocks rebuilds a pyramid from (partially) decoded source
// blocks, returning how many leading levels were recoverable.
func PyramidFromBlocks(blocks [][]byte, layout BlockLayout, res int) (*ResolutionPyramid, int, error) {
	return trace.FromBlocks(blocks, layout, res)
}

// FieldRMSE is the root-mean-square error between two grids.
func FieldRMSE(a, b []float64) (float64, error) { return trace.RMSE(a, b) }

// Churn experiment.
type (
	// ChurnConfig parameterizes a persistence-under-churn timeline run.
	ChurnConfig = exper.ChurnConfig
	// ChurnPoint is one timeline sample of the churn experiment.
	ChurnPoint = exper.ChurnPoint
)

// PersistenceUnderChurn pre-distributes data on a sensor field at t = 0,
// lets nodes die at exponential lifetimes, and samples the decodable
// priority levels at the configured times.
func PersistenceUnderChurn(cfg ChurnConfig) ([]ChurnPoint, error) {
	return exper.PersistenceUnderChurn(cfg)
}

// NewSensorNetwork builds a connected unit-disk sensor deployment of the
// given size and radio range (re-sampling positions until connected) and
// returns its GPSR router and graph.
func NewSensorNetwork(rng *rand.Rand, nodes int, radius float64) (*GeoRouter, *Graph, error) {
	for attempt := 0; ; attempt++ {
		pos := geom.RandomPoints(rng, nodes)
		g, err := geom.NewUnitDiskGraph(pos, radius)
		if err != nil {
			return nil, nil, err
		}
		if g.Connected() {
			r, err := gpsr.New(g)
			if err != nil {
				return nil, nil, err
			}
			return r, g, nil
		}
		if attempt >= 200 {
			return nil, nil, fmt.Errorf("%w (%d nodes, radius %g)", ErrDisconnected, nodes, radius)
		}
	}
}

// NewChordOverlay builds a Chord ring of n nodes with random IDs.
func NewChordOverlay(rng *rand.Rand, n int) (*ChordRing, error) {
	return chord.NewRandom(rng, n)
}

// NewGeoTransport adapts a GPSR router for pre-distribution.
func NewGeoTransport(r *GeoRouter, nodes int) (Transport, error) {
	return predist.NewGeoTransport(r, nodes)
}

// NewDHTTransport adapts a Chord ring for pre-distribution.
func NewDHTTransport(r *ChordRing) (Transport, error) {
	return predist.NewDHTTransport(r)
}

// NewDeployment derives the seeded cache locations for a deployment.
func NewDeployment(cfg DeployConfig) (*Deployment, error) { return predist.NewDeployment(cfg) }

// Collect pulls coded blocks in random order into a fresh decoder,
// stopping when the options' target is met.
func Collect(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock, opts CollectOptions) (CollectResult, *Decoder, error) {
	return collect.Run(rng, scheme, levels, blocks, opts)
}

// Store layer: the networked priority block store of internal/store — a
// TCP daemon holding coded blocks, a pooled retrying client, and a
// replicated store whose replication factor decreases with priority
// level, so the critical prefix survives more node losses.
type (
	// StoreServer is a TCP block-store daemon.
	StoreServer = store.Server
	// StoreServerConfig parameterizes a StoreServer.
	StoreServerConfig = store.ServerConfig
	// StoreClient talks to one daemon with pooling, retries and hedged
	// reads; all operations take a context.Context.
	StoreClient = store.Client
	// StoreClientConfig parameterizes a StoreClient.
	StoreClientConfig = store.ClientConfig
	// StoreRetryPolicy tunes client backoff (exponential with jitter).
	StoreRetryPolicy = store.RetryPolicy
	// StoreStats is a daemon inventory snapshot.
	StoreStats = store.Stats
	// StoreDialer abstracts connection establishment (fault injection).
	StoreDialer = store.Dialer
	// ReplicatedStore maps priority level to replication factor over a
	// set of daemons.
	ReplicatedStore = store.Replicated
	// ReplicatedStoreConfig parameterizes a ReplicatedStore.
	ReplicatedStoreConfig = store.ReplicatedConfig
	// FaultConfig parameterizes a fault-injecting dialer.
	FaultConfig = store.FaultConfig
	// FaultDialer injects seedable dial failures, frame corruption,
	// delays and partitions — the robustness tests' network.
	FaultDialer = store.FaultDialer
)

// NewStoreServer starts a block-store daemon on cfg.Addr (empty for an
// ephemeral loopback port). Shut it down with its Shutdown method.
func NewStoreServer(cfg StoreServerConfig) (*StoreServer, error) { return store.NewServer(cfg) }

// NewStoreClient returns a client for one daemon; connections are dialed
// lazily and pooled.
func NewStoreClient(cfg StoreClientConfig) (*StoreClient, error) { return store.NewClient(cfg) }

// NewReplicatedStore builds a priority-replicated store over per-replica
// clients for a code with the given number of levels.
func NewReplicatedStore(clients []*StoreClient, levels int, cfg ReplicatedStoreConfig) (*ReplicatedStore, error) {
	return store.NewReplicated(clients, levels, cfg)
}

// NewFaultDialer wraps a dialer (nil for the network) with seedable
// fault injection for robustness experiments.
func NewFaultDialer(base StoreDialer, cfg FaultConfig) *FaultDialer {
	return store.NewFaultDialer(base, cfg)
}

// Placement layer: the object-keyed namespace over the store fleet.
// Every coded block belongs to an ObjectID (the zero object is the
// key-less legacy namespace v1/v3 wire frames decode into), and a
// PlacedStore resolves each object's replica set by consistent hashing
// — the ID's successor list of R alive nodes on a chord ring — instead
// of one static replica list for everything. A GossipMonitor probes the
// fleet and reports liveness transitions; feeding them to SetAlive
// keeps placement tracking membership, deterministically: the same
// address list and membership sequence yields the same assignment in
// every run.
type (
	// ObjectID names one logical data object — the unit differentiated
	// persistence is defined over and the unit placement hashes.
	ObjectID = core.ObjectID
	// ObjectStats is one object's slice of a StoreStats snapshot.
	ObjectStats = store.ObjectStats
	// PlacedStore is the consistent-hashing front end: per-object shards
	// over a dynamic fleet, each shard a ReplicatedStore.
	PlacedStore = store.Placed
	// PlacedStoreConfig parameterizes a PlacedStore.
	PlacedStoreConfig = store.PlacedConfig
	// RingMember is one node's placement-ring entry (address, ring ID,
	// liveness).
	RingMember = store.RingMember
	// GossipMonitor is the seeded round-robin failure detector
	// (Alive → Suspect → Dead on consecutive probe misses).
	GossipMonitor = gossip.Monitor
	// GossipMonitorConfig parameterizes a GossipMonitor.
	GossipMonitorConfig = gossip.MonitorConfig
	// GossipEvent is one liveness transition.
	GossipEvent = gossip.Event
	// GossipProber abstracts the probe a GossipMonitor sends; a
	// PlacedStore satisfies it over the store wire path.
	GossipProber = gossip.Prober
)

// The reserved object values: the key-less legacy object every v1/v3
// wire frame belongs to, and the read-side wildcard selecting every
// object (never a valid block object).
const (
	ZeroObject = core.ZeroObject
	AllObjects = core.AllObjects
)

// NamedObject derives an ObjectID from a human-chosen name (FNV-64a,
// remapped away from the reserved values).
func NamedObject(name string) ObjectID { return core.NamedObject(name) }

// ParseObjectID resolves an object spec: canonical "obj-<16 hex>" parses
// exactly, anything else hashes as a name, empty is ZeroObject.
func ParseObjectID(s string) (ObjectID, error) { return core.ParseObjectID(s) }

// StoreNodeID maps a node address onto the placement ring (FNV-64a) —
// exported so tools can predict ownership without a live fleet.
func StoreNodeID(addr string) uint64 { return store.NodeID(addr) }

// NewPlacedStore builds the placement layer over per-node clients for a
// code with the given number of levels.
func NewPlacedStore(clients []*StoreClient, levels int, cfg PlacedStoreConfig) (*PlacedStore, error) {
	return store.NewPlaced(clients, levels, cfg)
}

// NewGossipMonitor builds a failure detector over the fleet's addresses;
// Tick probes the next node round-robin, Run loops it.
func NewGossipMonitor(addrs []string, p GossipProber, cfg GossipMonitorConfig) (*GossipMonitor, error) {
	return gossip.NewMonitor(addrs, p, cfg)
}

// Repair layer: decode-free maintenance of a replicated deployment.
// Redundancy lost to churn is regenerated by randomly recombining
// surviving coded blocks (the regeneration primitive of Dimakis et al.,
// "Network Coding for Distributed Storage Systems") — no source block
// is ever reconstructed on the repair path.
type (
	// RepairConfig parameterizes a RepairDaemon (interval, backoff,
	// jitter, per-round block budget, sample size, seed).
	RepairConfig = repair.Config
	// RepairDaemon is the background audit+recombine+place loop.
	RepairDaemon = repair.Daemon
	// RepairReport summarizes one repair round.
	RepairReport = repair.Report
	// StoreAuditConfig defines the provisioning targets an audit
	// compares the fleet against.
	StoreAuditConfig = repair.AuditConfig
	// StoreAudit is one fleet inventory scan: per-level copy counts vs.
	// targets, most-critical-level-first.
	StoreAudit = repair.Audit
	// StoreLevelReport is one level's audit line.
	StoreLevelReport = repair.LevelReport
)

// Recombine produces a fresh coded block as a random GF(2^8) linear
// combination of compatible coded blocks — the decode-free repair
// primitive. SLC inputs must share a level; PLC output takes the
// maximum input level, its support the union of the input spans.
func Recombine(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock) (*CodedBlock, error) {
	return core.Recombine(rng, scheme, levels, blocks)
}

// RecombineRanked is Recombine plus the GF(2^8) rank of the input
// sample — how many linearly independent fresh blocks it can yield.
// All-zero samples fail with ErrDegenerateInputs.
func RecombineRanked(rng *rand.Rand, scheme Scheme, levels *Levels, blocks []*CodedBlock) (*CodedBlock, int, error) {
	return core.RecombineRanked(rng, scheme, levels, blocks)
}

// AuditStore scans every replica's per-level inventory and compares it
// against the provisioning targets, returning the deficit report the
// repair loop acts on.
func AuditStore(ctx context.Context, r *ReplicatedStore, cfg StoreAuditConfig) (*StoreAudit, error) {
	return repair.AuditFleet(ctx, r, cfg)
}

// NewRepairDaemon validates the configuration and returns a stopped
// repair daemon for the replicated store; Start launches the background
// loop, RunOnce drives a single audit+repair round synchronously.
func NewRepairDaemon(r *ReplicatedStore, cfg RepairConfig) (*RepairDaemon, error) {
	return repair.New(r, cfg)
}

// NewObjectRepairDaemon scopes a repair daemon to one object on a
// placed fleet: each round re-resolves the object's shard, so repair
// follows the ring through churn and regenerated blocks land on the
// current owners.
func NewObjectRepairDaemon(p *PlacedStore, obj ObjectID, cfg RepairConfig) (*RepairDaemon, error) {
	return repair.NewObject(p, obj, cfg)
}

// Load & chaos layer: an open-loop arrival generator and a wall-clock
// fault scheduler for pushing a live fleet (in-process servers or real
// prlcd daemons) through named scenarios — the engine behind
// `prlcload`. Arrivals follow the scenario clock, never completions, so
// overload shows up as queue drops and latency rather than silently
// throttled demand; fault schedules are pure functions of (specs,
// nodes, seed), so a chaos run replays exactly.
type (
	// LoadScenario is one named load-and-chaos scenario: arrival rate
	// (with optional flash-crowd phases), put/get mix, object and level
	// shape, fault schedule, and SLO expectations.
	LoadScenario = loadgen.Scenario
	// LoadRatePhase is one piecewise-constant arrival-rate change.
	LoadRatePhase = loadgen.RatePhase
	// LoadFaultSpec is one scenario fault (kill, partition, corrupt or
	// delay) before seeding resolves its target node.
	LoadFaultSpec = loadgen.FaultSpec
	// LoadOp is one scheduled operation of a generated open-loop plan.
	LoadOp = loadgen.Op
	// LoadReport is a finished run's SLO report: per-level put/get
	// latency percentiles, error rates, goodput, the executed fault
	// records, the decode spot-check and the metrics cross-check.
	LoadReport = loadgen.Report
	// LoadRunConfig tunes a scenario run (logging, op timeout, scrape).
	LoadRunConfig = loadgen.RunConfig
	// LoadFleet abstracts the fleet under test: addresses plus
	// kill/restart hooks (ServerFleet in-process, prlcload's ProcFleet
	// for real daemons).
	LoadFleet = loadgen.Fleet
	// LoadServerFleet is the in-process fleet: one StoreServer plus
	// metrics registry per node, kill/restart preserving each node's
	// engine so restarts are durable.
	LoadServerFleet = loadgen.ServerFleet
	// ScheduledFault is one resolved fault instance on the wall-clock
	// timeline (target node and revert time fixed by the seed).
	ScheduledFault = loadgen.ScheduledFault
	// FaultRecord is one executed fault with its observed fire/revert
	// times and errors.
	FaultRecord = loadgen.FaultRecord
	// ChaosInjector is the fault surface a ChaosController drives.
	ChaosInjector = loadgen.Injector
	// ChaosController executes a fault schedule against an injector,
	// reverting every windowed fault even on cancellation.
	ChaosController = loadgen.Controller
)

// BuiltinScenarios returns the named scenario matrix: steady-state,
// flash-crowd, churn-storm and repair-under-load.
func BuiltinScenarios() []LoadScenario { return loadgen.Builtins() }

// BuiltinScenario returns one builtin scenario by name.
func BuiltinScenario(name string) (LoadScenario, error) { return loadgen.Builtin(name) }

// LoadScenarioFile parses a scenario file (one JSON object or an array).
func LoadScenarioFile(path string) ([]LoadScenario, error) { return loadgen.LoadScenarios(path) }

// NewLoadServerFleet starts n in-process store servers (each with its
// own metrics endpoint when withMetrics is set).
func NewLoadServerFleet(n int, withMetrics bool) (*LoadServerFleet, error) {
	return loadgen.NewServerFleet(n, withMetrics)
}

// BuildFaultSchedule resolves scenario fault specs into a deterministic
// wall-clock schedule: seeded target picks for Node < 0, sorted by fire
// time. Same (specs, nodes, seed) always yields the same schedule.
func BuildFaultSchedule(specs []LoadFaultSpec, nodes int, seed int64) ([]ScheduledFault, error) {
	return loadgen.BuildSchedule(specs, nodes, seed)
}

// FaultScheduleHash fingerprints a schedule (FNV-64a) so reports and
// tests can assert determinism across runs.
func FaultScheduleHash(sched []ScheduledFault) string { return loadgen.ScheduleHash(sched) }

// NewChaosController builds a controller that executes the schedule
// against the injector when Run is called.
func NewChaosController(sched []ScheduledFault, inj ChaosInjector) *ChaosController {
	return loadgen.NewController(sched, inj)
}

// RunLoadScenario drives one scenario against the fleet — seeds the
// objects, runs the open-loop generator and the chaos controller
// concurrently, then computes the SLO report with its decode spot-check
// and metrics cross-check.
func RunLoadScenario(ctx context.Context, fleet LoadFleet, sc LoadScenario, rc LoadRunConfig) (*LoadReport, error) {
	return loadgen.Run(ctx, fleet, sc, rc)
}

// Observability layer: a dependency-free metrics registry threaded
// through every hot path. Pass one registry via the Metrics field of
// StoreServerConfig, StoreClientConfig, ReplicatedStoreConfig and
// RepairConfig (and SetMetrics on Encoder/Decoder) to aggregate a whole
// process into one scrapeable view; a nil registry is a no-op.
type (
	// MetricsRegistry holds atomic counters, gauges and log-linear
	// latency/size histograms, exposable as Prometheus text or JSON.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every registered metric.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHandler serves r on /metrics (Prometheus text), /metrics.json
// and /debug/pprof/ — what `prlcd serve -metrics <addr>` listens with.
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }
