package prlc

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestFacadeUtilityHelpers(t *testing.T) {
	u, err := GeometricUtility(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 4 || u[0] != 1 || u[3] != 0.125 {
		t.Errorf("GeometricUtility = %v", u)
	}
	levels, err := NewLevels(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := ProportionalUtility(levels)
	if p[0] != 2 || p[1] != 8 {
		t.Errorf("ProportionalUtility = %v", p)
	}
}

func TestFacadeOptimizeDistribution(t *testing.T) {
	levels, err := NewLevels(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := OptimizeDistribution(OptimizeProblem{
		Scheme:  PLC,
		Levels:  levels,
		Utility: Utility{1, 0.05},
		M:       6, // only the critical level can fit
	}, DesignOptions{Seed: 1, MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	if sol.P[0] < 0.5 {
		t.Errorf("critical-heavy utility produced %v", sol.P)
	}
	if sol.ExpectedUtility <= 0 || math.IsNaN(sol.ExpectedUtility) {
		t.Errorf("E[U] = %g", sol.ExpectedUtility)
	}
}

func TestFacadePersistenceUnderChurn(t *testing.T) {
	levels, err := NewLevels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := PersistenceUnderChurn(ChurnConfig{
		Scheme:       PLC,
		Levels:       levels,
		Dist:         UniformDistribution(2),
		Nodes:        60,
		Radius:       0.22,
		M:            30,
		MeanLifetime: 10,
		SampleTimes:  []float64{0, 30},
		Trials:       5,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].AliveFrac != 1 {
		t.Errorf("t=0 alive fraction %g", pts[0].AliveFrac)
	}
	if pts[1].AliveFrac >= pts[0].AliveFrac {
		t.Errorf("no decay: %+v", pts)
	}
}

func TestFacadeSensorNetworkImpossible(t *testing.T) {
	// Two nodes with a vanishing radio range can never connect.
	rng := rand.New(rand.NewSource(3))
	if _, _, err := NewSensorNetwork(rng, 10, 1e-9); err == nil {
		t.Error("impossible deployment accepted")
	}
}

func TestFacadeStream(t *testing.T) {
	levels, err := NewLevels(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sources := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	enc, err := NewEncoder(PLC, levels, sources)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	s, err := NewStream(PLC, levels, 2, &sink)
	if err != nil {
		t.Fatal(err)
	}
	dist := UniformDistribution(2)
	for !s.Complete() {
		blocks, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Add(blocks[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(sink.Bytes(), []byte{1, 2, 3, 4, 5, 6}) {
		t.Errorf("stream sink = %v", sink.Bytes())
	}
}

func TestFacadeMinBlocks(t *testing.T) {
	levels, err := NewLevels(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MinBlocks(PLC, levels, UniformDistribution(2), 1, 0.9, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m < 4 {
		t.Errorf("MinBlocks = %d, below the level size", m)
	}
}

func TestFacadeSensorFieldPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	field, err := NewSensorField(rng, 3)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := field.SampleGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	pyr, err := BuildPyramid(grid, 8)
	if err != nil {
		t.Fatal(err)
	}
	blocks, layout, err := pyr.ToBlocks(16)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, n, err := PyramidFromBlocks(blocks, layout, 8)
	if err != nil {
		t.Fatal(err)
	}
	full, err := rebuilt.Reconstruct(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := FieldRMSE(full, grid)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-12 {
		t.Errorf("facade pyramid round trip RMSE %g", rmse)
	}
}
