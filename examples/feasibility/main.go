// Feasibility: the Sec. 3.4 design workflow. Given application decoding
// constraints — "from M_i random coded blocks, expect at least k_i levels"
// — search the probability simplex for a priority distribution that
// satisfies them, then validate the design against both the analytical
// model and a Monte-Carlo simulation of the real code. Reproduces the
// paper's Table 1 / Fig. 7 setting (500 blocks in levels 50/100/350).
package main

import (
	"fmt"
	"log"
	"math/rand"

	prlc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	levels, err := prlc.NewLevels(50, 100, 350)
	if err != nil {
		return err
	}

	cases := []struct {
		name        string
		constraints []prlc.DecodingConstraint
	}{
		{"Case 1", []prlc.DecodingConstraint{{M: 130, MinLevels: 1}, {M: 950, MinLevels: 2}}},
		{"Case 2", []prlc.DecodingConstraint{{M: 265, MinLevels: 1}, {M: 287, MinLevels: 2}}},
		{"Case 3", []prlc.DecodingConstraint{{M: 240, MinLevels: 1}, {M: 450, MinLevels: 2}}},
		// A deliberately impossible case: decode everything from N/2 blocks.
		{"Impossible", []prlc.DecodingConstraint{{M: 250, MinLevels: 3}}},
	}

	for _, c := range cases {
		sol, err := prlc.DesignDistribution(prlc.DesignProblem{
			Scheme:   prlc.PLC,
			Levels:   levels,
			Decoding: c.constraints,
			Alpha:    2,
			Epsilon:  0.01,
		}, prlc.DesignOptions{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%s: constraints %v\n", c.name, c.constraints)
		if !sol.Feasible {
			fmt.Printf("  infeasible (best violation %.4g after %d evaluations) — the\n"+
				"  constraints cannot be fulfilled, as the paper notes can happen\n\n",
				sol.Violation, sol.Evals)
			continue
		}
		fmt.Printf("  distribution: %.4f / %.4f / %.4f (%d evaluations)\n",
			sol.P[0], sol.P[1], sol.P[2], sol.Evals)

		// Validate analytically at each constraint point.
		for _, d := range c.constraints {
			r, err := prlc.ExpectedDecodedLevels(prlc.PLC, levels, sol.P, d.M)
			if err != nil {
				return err
			}
			fmt.Printf("  analysis:   E(X_%d) = %.3f (constraint >= %g)\n", d.M, r.EX, d.MinLevels)
		}

		// Validate by simulating the actual code, 100 trials per point.
		rng := rand.New(rand.NewSource(9))
		enc, err := prlc.NewEncoder(prlc.PLC, levels, nil)
		if err != nil {
			return err
		}
		for _, d := range c.constraints {
			sum := 0.0
			const trials = 100
			for trial := 0; trial < trials; trial++ {
				dec, err := prlc.NewDecoder(prlc.PLC, levels, 0)
				if err != nil {
					return err
				}
				blocks, err := enc.EncodeBatch(rng, sol.P, d.M)
				if err != nil {
					return err
				}
				for _, b := range blocks {
					if _, err := dec.Add(b); err != nil {
						return err
					}
				}
				sum += float64(dec.DecodedLevels())
			}
			fmt.Printf("  simulation: E(X_%d) = %.3f over %d trials\n", d.M, sum/trials, trials)
		}
		fmt.Println()
	}
	return nil
}
