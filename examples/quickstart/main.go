// Quickstart: encode prioritized data with Progressive Linear Codes,
// receive fewer coded blocks than would be needed for full recovery, and
// watch the important levels decode first.
package main

import (
	"fmt"
	"log"
	"math/rand"

	prlc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 60 source blocks: 10 critical, 20 important, 30 bulk.
	levels, err := prlc.NewLevels(10, 20, 30)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = []byte(fmt.Sprintf("measurement-%02d", i))
	}

	enc, err := prlc.NewEncoder(prlc.PLC, levels, sources)
	if err != nil {
		return err
	}
	dec, err := prlc.NewDecoder(prlc.PLC, levels, len(sources[0]))
	if err != nil {
		return err
	}

	// Half the coded blocks carry the critical level: the paper's
	// priority distribution in action.
	dist := prlc.PriorityDistribution{0.5, 0.25, 0.25}

	fmt.Println("blocks  decoded-levels  decoded-sources")
	for received := 0; !dec.Complete(); received++ {
		if received%10 == 0 {
			fmt.Printf("%6d  %14d  %15d\n", received, dec.DecodedLevels(), dec.DecodedBlocks())
		}
		batch, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			return err
		}
		if _, err := dec.Add(batch[0]); err != nil {
			return err
		}
	}
	fmt.Printf("complete after %d coded blocks\n\n", dec.Received())

	// Every payload survives the round trip.
	for i := range sources {
		got, err := dec.Source(i)
		if err != nil {
			return err
		}
		if string(got) != string(sources[i]) {
			return fmt.Errorf("source %d corrupted: %q", i, got)
		}
	}
	first, err := dec.Source(0)
	if err != nil {
		return err
	}
	fmt.Printf("first source block: %q\n", first)

	// Contrast with plain RLC: nothing decodes below N blocks.
	r, err := prlc.ExpectedDecodedLevels(prlc.RLC, levels, dist, levels.Total()-1)
	if err != nil {
		return err
	}
	fmt.Printf("RLC with N-1 blocks decodes %.0f levels (all or nothing)\n", r.EX)
	return nil
}
