// Sensornet: the paper's sensor-network scenario end to end. A field of
// sensors takes periodic measurements at three priority levels (alarm
// summaries, aggregates, raw samples), pre-distributes them as PLC coded
// blocks over GPSR routing with the O(ln N) fanout, then suffers
// escalating node failures; a collector recovers what survives, most
// important data first.
package main

import (
	"fmt"
	"log"
	"math/rand"

	prlc "repro"
)

const (
	numSensors = 250
	radioRange = 0.15
	numCaches  = 300
	payloadLen = 24
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// Deploy the field.
	router, graph, err := prlc.NewSensorNetwork(rng, numSensors, radioRange)
	if err != nil {
		return err
	}
	transport, err := prlc.NewGeoTransport(router, numSensors)
	if err != nil {
		return err
	}
	fmt.Printf("sensor field: %d nodes, radio range %.2f, connected=%v\n",
		numSensors, radioRange, graph.Connected())

	// Three measurement classes.
	levels, err := prlc.NewLevels(8, 24, 68) // N = 100
	if err != nil {
		return err
	}
	dist := prlc.PriorityDistribution{0.40, 0.30, 0.30}

	dep, err := prlc.NewDeployment(prlc.DeployConfig{
		Scheme:     prlc.PLC,
		Levels:     levels,
		Dist:       dist,
		M:          numCaches,
		Seed:       99, // the network-wide common random seed
		Fanout:     3 * prlc.LogSparsity(levels.Total()),
		TwoChoices: true,
		PayloadLen: payloadLen,
	})
	if err != nil {
		return err
	}
	if err := dep.ResolveOwners(transport); err != nil {
		return err
	}

	// Each sensor measures; blocks are disseminated from their origin.
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, payloadLen)
		rng.Read(sources[i])
		origin := rng.Intn(numSensors)
		if err := dep.Disseminate(rng, transport, origin, i, sources[i]); err != nil {
			return err
		}
	}
	st := dep.Stats()
	fmt.Printf("pre-distribution: %d messages, %.1f hops/message, max cache load %d\n\n",
		st.Messages, float64(st.Hops)/float64(st.Messages), dep.MaxLoad())

	// Failure sweep: batteries die, storms take out regions.
	fmt.Println("failed%  surviving-caches  levels  alarm-data-intact")
	for _, failFrac := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		dead := make(map[int]bool)
		for node := 0; node < numSensors; node++ {
			if rng.Float64() < failFrac {
				dead[node] = true
			}
		}
		blocks := dep.CodedBlocks(func(node int) bool { return !dead[node] })
		res, dec, err := prlc.Collect(rng, prlc.PLC, levels, blocks,
			prlc.CollectOptions{PayloadLen: payloadLen})
		if err != nil {
			return err
		}
		alarmsIntact := res.DecodedLevels >= 1
		if alarmsIntact {
			// Verify the alarm payloads byte for byte.
			for i := 0; i < levels.Size(0); i++ {
				got, err := dec.Source(i)
				if err != nil {
					return err
				}
				if string(got) != string(sources[i]) {
					return fmt.Errorf("alarm block %d corrupted", i)
				}
			}
		}
		fmt.Printf("%6.0f%%  %16d  %6d  %v\n",
			failFrac*100, len(blocks), res.DecodedLevels, alarmsIntact)
	}
	return nil
}
