// Multires: the multi-resolution scenario the paper's strict priority
// model motivates (Sec. 2, citing Wang & Ramchandran's multi-resolution
// sensor imaging). A sensor field is sampled on a 32×32 grid and
// decomposed into a resolution pyramid; coarse levels become
// high-priority source blocks. As coded blocks trickle in, the
// reconstruction sharpens level by level — and under heavy loss, what
// survives is a faithful low-resolution picture of the whole field
// rather than a useless shard of the full-resolution one.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	prlc "repro"
)

const (
	gridRes    = 32
	payloadLen = 64 // 8 float64 coefficients per source block
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(12))

	field, err := prlc.NewSensorField(rng, 8)
	if err != nil {
		return err
	}
	grid, err := field.SampleGrid(gridRes)
	if err != nil {
		return err
	}
	pyramid, err := prlc.BuildPyramid(grid, gridRes)
	if err != nil {
		return err
	}
	blocks, layout, err := pyramid.ToBlocks(payloadLen)
	if err != nil {
		return err
	}
	levels, err := prlc.NewLevels(layout.LevelSizes...)
	if err != nil {
		return err
	}
	fmt.Printf("32x32 field -> %d-level pyramid -> %d source blocks (sizes %v)\n\n",
		pyramid.Levels(), levels.Total(), layout.LevelSizes)

	// Priority distribution: spend coded blocks where the resolution
	// payoff is — slightly favoring the coarse levels.
	dist := prlc.PriorityDistribution{0.1, 0.1, 0.15, 0.2, 0.2, 0.25}
	enc, err := prlc.NewEncoder(prlc.PLC, levels, blocks)
	if err != nil {
		return err
	}
	dec, err := prlc.NewDecoder(prlc.PLC, levels, payloadLen)
	if err != nil {
		return err
	}

	fmt.Println("coded-blocks  pyramid-levels  resolution  RMSE")
	printed := -1
	for !dec.Complete() {
		cb, err := enc.EncodeBatch(rng, dist, 1)
		if err != nil {
			return err
		}
		if _, err := dec.Add(cb[0]); err != nil {
			return err
		}
		got := dec.DecodedLevels()
		if got > printed {
			printed = got
			if got == 0 {
				continue
			}
			rebuilt, n, err := prlc.PyramidFromBlocks(dec.Sources(), layout, gridRes)
			if err != nil {
				return err
			}
			approx, err := rebuilt.Reconstruct(n - 1)
			if err != nil {
				return err
			}
			rmse, err := prlc.FieldRMSE(approx, grid)
			if err != nil {
				return err
			}
			res := 1 << uint(n-1)
			fmt.Printf("%12d  %14d  %7dx%-4d %.5f\n", dec.Received(), n, res, res, rmse)
		}
	}

	// Render the coarse vs full reconstruction as ASCII shading.
	rebuilt, n, err := prlc.PyramidFromBlocks(dec.Sources(), layout, gridRes)
	if err != nil {
		return err
	}
	coarse, err := rebuilt.Reconstruct(2) // 4x4 view
	if err != nil {
		return err
	}
	full, err := rebuilt.Reconstruct(n - 1)
	if err != nil {
		return err
	}
	fmt.Printf("\n4x4 approximation (3 levels)      full 32x32 field (all levels)\n")
	fmt.Println(sideBySide(render(coarse, gridRes, 16), render(full, gridRes, 16)))
	return nil
}

// render shades a grid as ASCII art downsampled to the given width.
func render(grid []float64, res, width int) []string {
	shades := []byte(" .:-=+*#%@")
	min, max := grid[0], grid[0]
	for _, v := range grid {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == min {
		max = min + 1
	}
	step := res / width
	lines := make([]string, 0, width/2)
	for y := 0; y < res; y += 2 * step { // half vertical resolution: chars are tall
		var b strings.Builder
		for x := 0; x < res; x += step {
			v := grid[y*res+x]
			idx := int((v - min) / (max - min) * float64(len(shades)-1))
			b.WriteByte(shades[idx])
		}
		lines = append(lines, b.String())
	}
	return lines
}

func sideBySide(a, b []string) string {
	var out strings.Builder
	for i := 0; i < len(a) || i < len(b); i++ {
		left, right := "", ""
		if i < len(a) {
			left = a[i]
		}
		if i < len(b) {
			right = b[i]
		}
		fmt.Fprintf(&out, "%-33s %s\n", left, right)
	}
	return out.String()
}
