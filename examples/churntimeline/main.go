// Churntimeline: persistence on a time axis. Sensors pre-distribute coded
// measurements at t = 0 and then die at exponentially distributed times;
// the example tracks how many priority levels remain decodable as the
// network decays, comparing the strict-priority design against a
// utility-optimized one (the non-strict model the paper leaves as future
// work).
package main

import (
	"fmt"
	"log"

	prlc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	levels, err := prlc.NewLevels(5, 10, 25) // N = 40
	if err != nil {
		return err
	}

	// Design A: strict priority via decoding constraints — the critical
	// level must be expected to survive with only 15 random caches.
	strict, err := prlc.DesignDistribution(prlc.DesignProblem{
		Scheme:   prlc.PLC,
		Levels:   levels,
		Decoding: []prlc.DecodingConstraint{{M: 15, MinLevels: 1}},
	}, prlc.DesignOptions{Seed: 1})
	if err != nil {
		return err
	}
	if !strict.Feasible {
		return fmt.Errorf("strict design infeasible")
	}

	// Design B: maximize expected utility at a 60-cache budget with
	// utility proportional to level volume (recover as many blocks as
	// possible, priorities soft).
	volume, err := prlc.OptimizeDistribution(prlc.OptimizeProblem{
		Scheme:  prlc.PLC,
		Levels:  levels,
		Utility: prlc.ProportionalUtility(levels),
		M:       60,
	}, prlc.DesignOptions{Seed: 2})
	if err != nil {
		return err
	}

	fmt.Printf("strict-priority distribution: %.3f / %.3f / %.3f\n",
		strict.P[0], strict.P[1], strict.P[2])
	fmt.Printf("volume-utility distribution:  %.3f / %.3f / %.3f (E[U] = %.1f blocks)\n\n",
		volume.P[0], volume.P[1], volume.P[2], volume.ExpectedUtility)

	sampleTimes := []float64{0, 5, 10, 20, 30, 50}
	runTimeline := func(name string, dist prlc.PriorityDistribution) error {
		pts, err := prlc.PersistenceUnderChurn(prlc.ChurnConfig{
			Scheme:       prlc.PLC,
			Levels:       levels,
			Dist:         dist,
			Nodes:        120,
			Radius:       0.18,
			M:            120,
			MeanLifetime: 20,
			SampleTimes:  sampleTimes,
			Trials:       30,
			Seed:         3,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n  t       alive%%   levels\n", name)
		for _, p := range pts {
			fmt.Printf("  %-7.0f %6.0f%%   %.2f±%.2f\n", p.T, p.AliveFrac*100, p.Mean, p.CI95)
		}
		fmt.Println()
		return nil
	}
	if err := runTimeline("strict-priority design", strict.P); err != nil {
		return err
	}
	return runTimeline("volume-utility design", volume.P)
}
