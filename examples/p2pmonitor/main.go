// P2pmonitor: the paper's P2P monitoring scenario. Peers in a live
// streaming session log health metrics at three priorities — session-wide
// health summaries, per-peer quality indicators, verbose traces — into the
// overlay itself via a Chord DHT. Peers churn in and out; when an operator
// later audits the session, the health summaries survive churn that makes
// full trace recovery impossible.
package main

import (
	"fmt"
	"log"
	"math/rand"

	prlc "repro"
)

const (
	numPeers   = 400
	numCaches  = 600
	payloadLen = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(2026))

	ring, err := prlc.NewChordOverlay(rng, numPeers)
	if err != nil {
		return err
	}
	transport, err := prlc.NewDHTTransport(ring)
	if err != nil {
		return err
	}
	fmt.Printf("chord overlay: %d peers\n", numPeers)

	// Monitoring data: 10 session summaries, 40 peer-quality records,
	// 150 verbose trace chunks.
	levels, err := prlc.NewLevels(10, 40, 150) // N = 200
	if err != nil {
		return err
	}

	// Design the priority distribution from operational requirements: the
	// summaries must be expected to decode from 100 random caches, the
	// quality records from 300 — plus full recovery from 2N caches with
	// probability 0.99 (eq. 10).
	sol, err := prlc.DesignDistribution(prlc.DesignProblem{
		Scheme: prlc.PLC,
		Levels: levels,
		Decoding: []prlc.DecodingConstraint{
			{M: 100, MinLevels: 1},
			{M: 300, MinLevels: 2},
		},
		Alpha:   2,
		Epsilon: 0.01,
	}, prlc.DesignOptions{Seed: 5})
	if err != nil {
		return err
	}
	if !sol.Feasible {
		return fmt.Errorf("monitoring requirements infeasible (violation %g)", sol.Violation)
	}
	fmt.Printf("designed priority distribution: %.4f / %.4f / %.4f\n\n",
		sol.P[0], sol.P[1], sol.P[2])

	dep, err := prlc.NewDeployment(prlc.DeployConfig{
		Scheme:     prlc.PLC,
		Levels:     levels,
		Dist:       sol.P,
		M:          numCaches,
		Seed:       31337,
		PayloadLen: payloadLen,
	})
	if err != nil {
		return err
	}
	if err := dep.ResolveOwners(transport); err != nil {
		return err
	}

	// Peers publish their monitoring records through the DHT.
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, payloadLen)
		copy(sources[i], fmt.Sprintf("metric[%03d]", i))
		origin := rng.Intn(numPeers)
		if err := dep.Disseminate(rng, transport, origin, i, sources[i]); err != nil {
			return err
		}
	}
	st := dep.Stats()
	fmt.Printf("published %d records: %d DHT messages, %.1f hops/lookup\n\n",
		levels.Total(), st.Messages, float64(st.Hops)/float64(st.Messages))

	// Churn: peers leave the session over time.
	fmt.Println("departed%  caches  summaries  quality  traces")
	for _, churn := range []float64{0, 0.3, 0.5, 0.7, 0.85} {
		departed := make(map[int]bool)
		for peer := 0; peer < numPeers; peer++ {
			if rng.Float64() < churn {
				departed[peer] = true
			}
		}
		blocks := dep.CodedBlocks(func(peer int) bool { return !departed[peer] })
		res, dec, err := prlc.Collect(rng, prlc.PLC, levels, blocks,
			prlc.CollectOptions{PayloadLen: payloadLen})
		if err != nil {
			return err
		}
		ok := func(level int) string {
			if res.DecodedLevels > level {
				return "recovered"
			}
			return "lost"
		}
		fmt.Printf("%8.0f%%  %6d  %9s  %7s  %6s\n",
			churn*100, len(blocks), ok(0), ok(1), ok(2))
		if res.DecodedLevels >= 1 {
			got, err := dec.Source(0)
			if err != nil {
				return err
			}
			if string(got[:11]) != "metric[000]" {
				return fmt.Errorf("summary record corrupted: %q", got[:11])
			}
		}
	}
	return nil
}
