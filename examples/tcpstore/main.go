// Tcpstore: priority-coded persistence over real sockets, now as a thin
// consumer of the prlc store layer. Three storage daemons hold coded
// blocks behind a priority-replicated store (the critical level on every
// replica, bulk data on f+1); a producer encodes prioritized
// measurements and ships them over TCP; then one daemon fails and a
// collector recovers everything from the survivors — the critical level
// survives the loss of a third of the storage fleet.
//
// By default the three daemons run in-process on ephemeral ports. With
// -addrs a,b,c the demo drives external `prlcd serve` daemons instead
// (see `make daemon-demo`), shutting the first one down over the wire.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	prlc "repro"
	"repro/internal/cliutil"
)

func main() {
	addrs := flag.String("addrs", "", "comma-separated external daemon addresses (default: 3 in-process daemons)")
	flag.Parse()
	if err := run(cliutil.SplitAddrs(*addrs)); err != nil {
		log.Fatal(err)
	}
}

func run(addrs []string) error {
	ctx := context.Background()

	// Storage fleet: external daemons, or three in-process ones.
	var servers []*prlc.StoreServer
	if len(addrs) == 0 {
		for i := 0; i < 3; i++ {
			srv, err := prlc.NewStoreServer(prlc.StoreServerConfig{})
			if err != nil {
				return err
			}
			defer func() {
				sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				defer cancel()
				srv.Shutdown(sctx)
			}()
			servers = append(servers, srv)
			addrs = append(addrs, srv.Addr())
			fmt.Printf("storage daemon %d at %s\n", i, srv.Addr())
		}
	} else if len(addrs) < 2 {
		return fmt.Errorf("need at least 2 daemon addresses, got %d", len(addrs))
	}

	// Prioritized data: 3 critical + 9 bulk blocks of 32 bytes.
	levels, err := prlc.NewLevels(3, 9)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(99))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := prlc.NewEncoder(prlc.PLC, levels, sources)
	if err != nil {
		return err
	}
	blocks, err := enc.EncodeBatch(rng, prlc.PriorityDistribution{0.4, 0.6}, 30)
	if err != nil {
		return err
	}

	// Replicated store: critical level on all replicas, bulk on f+1.
	clients := make([]*prlc.StoreClient, len(addrs))
	for i, a := range addrs {
		clients[i], err = prlc.NewStoreClient(prlc.StoreClientConfig{Addr: a})
		if err != nil {
			return err
		}
		defer clients[i].Close()
	}
	repl, err := prlc.NewReplicatedStore(clients, levels.Count(), prlc.ReplicatedStoreConfig{Tolerance: 1})
	if err != nil {
		return err
	}
	if _, err := repl.PutAll(ctx, blocks); err != nil {
		return err
	}
	fmt.Printf("shipped %d coded blocks over TCP (critical level x%d, bulk x%d)\n\n",
		len(blocks), repl.ReplicasFor(0), repl.ReplicasFor(levels.Count()-1))

	// Daemon 0 dies: direct shutdown in-process, over the wire otherwise.
	if len(servers) > 0 {
		sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		if err := servers[0].Shutdown(sctx); err != nil {
			return err
		}
	} else if err := clients[0].Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("daemon 0 failed; collecting from the survivors")

	// Collect from the survivors and decode.
	survived, err := repl.Collect(ctx, -1)
	if err != nil {
		return err
	}
	res, dec, err := prlc.Collect(rng, prlc.PLC, levels, survived,
		prlc.CollectOptions{Context: ctx, PayloadLen: 32})
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d/%d source blocks (%d levels) from %d surviving coded blocks\n",
		res.DecodedBlocks, levels.Total(), res.DecodedLevels, len(survived))
	if res.DecodedLevels >= 1 {
		for i := 0; i < levels.Size(0); i++ {
			got, err := dec.Source(i)
			if err != nil {
				return err
			}
			if string(got) != string(sources[i]) {
				return fmt.Errorf("critical block %d corrupted in transit", i)
			}
		}
		fmt.Println("critical level verified byte-for-byte")
	}
	return nil
}
