// Tcpstore: priority-coded persistence over real sockets. Three storage
// daemons listen on loopback TCP; a producer encodes prioritized
// measurements into coded blocks and ships them over the wire (the
// CodedBlock binary format, length-prefixed); then one daemon "fails"
// (shuts down) and a collector fetches the surviving blocks and decodes —
// the critical level survives the loss of a third of the storage fleet.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"

	prlc "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// --- Storage daemon -------------------------------------------------------

// daemon is a TCP block store: 'S' frames store a coded block, a 'G'
// frame dumps every stored block back.
type daemon struct {
	ln     net.Listener
	mu     sync.Mutex
	blocks [][]byte // marshaled coded blocks
	wg     sync.WaitGroup
}

func startDaemon() (*daemon, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d := &daemon{ln: ln}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

func (d *daemon) addr() string { return d.ln.Addr().String() }

func (d *daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed: daemon is down
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer conn.Close()
			d.serve(conn)
		}()
	}
}

func (d *daemon) serve(conn net.Conn) {
	for {
		cmd := make([]byte, 1)
		if _, err := io.ReadFull(conn, cmd); err != nil {
			return
		}
		switch cmd[0] {
		case 'S':
			frame, err := readFrame(conn)
			if err != nil {
				return
			}
			d.mu.Lock()
			d.blocks = append(d.blocks, frame)
			d.mu.Unlock()
			if _, err := conn.Write([]byte{'+'}); err != nil {
				return
			}
		case 'G':
			d.mu.Lock()
			snapshot := make([][]byte, len(d.blocks))
			copy(snapshot, d.blocks)
			d.mu.Unlock()
			var count [4]byte
			binary.BigEndian.PutUint32(count[:], uint32(len(snapshot)))
			if _, err := conn.Write(count[:]); err != nil {
				return
			}
			for _, b := range snapshot {
				if err := writeFrame(conn, b); err != nil {
					return
				}
			}
		default:
			return
		}
	}
}

// stop closes the listener and waits for in-flight connections.
func (d *daemon) stop() {
	d.ln.Close()
	d.wg.Wait()
}

// --- Wire helpers ----------------------------------------------------------

func writeFrame(w io.Writer, b []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > 1<<20 {
		return nil, errors.New("frame too large")
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// --- Client side -----------------------------------------------------------

func storeBlock(addr string, b *prlc.CodedBlock) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	data, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	if _, err := conn.Write([]byte{'S'}); err != nil {
		return err
	}
	if err := writeFrame(conn, data); err != nil {
		return err
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(conn, ack); err != nil {
		return err
	}
	if ack[0] != '+' {
		return fmt.Errorf("daemon %s rejected the block", addr)
	}
	return nil
}

func fetchBlocks(addr string) ([]*prlc.CodedBlock, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'G'}); err != nil {
		return nil, err
	}
	var n [4]byte
	if _, err := io.ReadFull(conn, n[:]); err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint32(n[:])
	out := make([]*prlc.CodedBlock, 0, count)
	for i := uint32(0); i < count; i++ {
		frame, err := readFrame(conn)
		if err != nil {
			return nil, err
		}
		var b prlc.CodedBlock
		if err := b.UnmarshalBinary(frame); err != nil {
			return nil, err
		}
		out = append(out, &b)
	}
	return out, nil
}

// --- Scenario ----------------------------------------------------------------

func run() error {
	// Three storage daemons.
	daemons := make([]*daemon, 3)
	for i := range daemons {
		d, err := startDaemon()
		if err != nil {
			return err
		}
		daemons[i] = d
		defer d.stop()
		fmt.Printf("storage daemon %d at %s\n", i, d.addr())
	}

	// Prioritized data: 3 critical + 9 bulk blocks of 32 bytes.
	levels, err := prlc.NewLevels(3, 9)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(99))
	sources := make([][]byte, levels.Total())
	for i := range sources {
		sources[i] = make([]byte, 32)
		rng.Read(sources[i])
	}
	enc, err := prlc.NewEncoder(prlc.PLC, levels, sources)
	if err != nil {
		return err
	}

	// Ship 30 coded blocks round robin over TCP.
	dist := prlc.PriorityDistribution{0.4, 0.6}
	blocks, err := enc.EncodeBatch(rng, dist, 30)
	if err != nil {
		return err
	}
	for i, b := range blocks {
		if err := storeBlock(daemons[i%3].addr(), b); err != nil {
			return err
		}
	}
	fmt.Printf("shipped %d coded blocks over TCP (10 per daemon)\n\n", len(blocks))

	// Daemon 0 dies.
	daemons[0].stop()
	fmt.Println("daemon 0 failed; collecting from the survivors")

	// Collect from survivors and decode.
	var survived []*prlc.CodedBlock
	for _, d := range daemons[1:] {
		got, err := fetchBlocks(d.addr())
		if err != nil {
			return err
		}
		survived = append(survived, got...)
	}
	res, dec, err := prlc.Collect(rng, prlc.PLC, levels, survived, prlc.CollectOptions{PayloadLen: 32})
	if err != nil {
		return err
	}
	fmt.Printf("recovered %d/%d source blocks (%d levels) from %d surviving coded blocks\n",
		res.DecodedBlocks, levels.Total(), res.DecodedLevels, len(survived))
	if res.DecodedLevels >= 1 {
		for i := 0; i < levels.Size(0); i++ {
			got, err := dec.Source(i)
			if err != nil {
				return err
			}
			if string(got) != string(sources[i]) {
				return fmt.Errorf("critical block %d corrupted in transit", i)
			}
		}
		fmt.Println("critical level verified byte-for-byte")
	}
	return nil
}
